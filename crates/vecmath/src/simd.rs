//! Runtime-dispatched SIMD distance kernels and batched one-vs-many
//! scan primitives.
//!
//! The paper's RC#1 credits a large share of the PASE↔Faiss gap to
//! distance calculation: Faiss runs explicitly vectorized `fvec_L2sqr`
//! kernels while PASE runs a dependent-chain scalar loop. The portable
//! [`crate::distance::l2_sqr_unrolled`] loop relies on the
//! autovectorizer, which at the default `x86-64` target baseline emits
//! 4-wide SSE — half the width the hardware offers. This module closes
//! that realism gap for the specialized engine:
//!
//! * explicit AVX2+FMA kernels (8 lanes, four independent accumulators,
//!   masked tail) on `x86_64`, NEON (4 lanes, four accumulators) on
//!   `aarch64`, with the unrolled loop as the portable fallback;
//! * one-time runtime selection via `is_x86_feature_detected!` into a
//!   cached function-pointer table — no per-call feature checks;
//! * `VDB_FORCE_SCALAR=1` pins the fallback, so CI can prove both
//!   dispatch arms return identical search results;
//! * batched one-vs-many primitives ([`l2_sqr_batch`],
//!   [`inner_product_batch`], [`scan_into`], [`distance_gather`]) that
//!   hoist the profiling `enabled()` branch and event counting to once
//!   per batch instead of once per vector.
//!
//! The generalized (PASE-side) engine never calls into this module with
//! its default configuration: its `DistanceKernel::Reference` arm keeps
//! the dependent-chain loop, so the measured specialized-vs-generalized
//! gap stays honest (see DESIGN.md, "Kernel layer").

use crate::distance::{dot_unrolled, l2_sqr_unrolled, DistanceKernel};
use crate::heap::TopKSink;
use crate::metric::Metric;
use crate::vectors::VectorSet;
use std::sync::OnceLock;
use vdb_profile::{self as profile, Category};

/// Which implementation the one-time dispatcher selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActiveKernel {
    /// Explicit 8-lane AVX2 kernels with FMA accumulation (`x86_64`).
    Avx2Fma,
    /// Explicit 4-lane NEON kernels with FMA accumulation (`aarch64`).
    Neon,
    /// The portable unrolled loop (autovectorizer-dependent).
    Scalar,
}

/// Function-pointer table filled once at first use.
struct Kernels {
    l2: fn(&[f32], &[f32]) -> f32,
    dot: fn(&[f32], &[f32]) -> f32,
    which: ActiveKernel,
}

static KERNELS: OnceLock<Kernels> = OnceLock::new();

#[inline]
fn kernels() -> &'static Kernels {
    KERNELS.get_or_init(select_kernels)
}

const SCALAR_KERNELS: Kernels = Kernels {
    l2: l2_sqr_unrolled,
    dot: dot_unrolled,
    which: ActiveKernel::Scalar,
};

fn select_kernels() -> Kernels {
    if force_scalar() {
        return SCALAR_KERNELS;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Kernels {
                l2: x86::l2_sqr_avx2_safe,
                dot: x86::dot_avx2_safe,
                which: ActiveKernel::Avx2Fma,
            };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Kernels {
                l2: arm::l2_sqr_neon_safe,
                dot: arm::dot_neon_safe,
                which: ActiveKernel::Neon,
            };
        }
    }
    SCALAR_KERNELS
}

/// Whether `VDB_FORCE_SCALAR=1` pins the portable fallback (read once,
/// at first kernel use).
pub fn force_scalar() -> bool {
    matches!(std::env::var("VDB_FORCE_SCALAR"), Ok(v) if v == "1")
}

/// The kernel implementation selected for this process.
pub fn active_kernel() -> ActiveKernel {
    kernels().which
}

/// Squared L2 distance via the dispatched kernel. No profiling — callers
/// ([`crate::distance::l2_sqr`], the batch primitives) attribute.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn l2_sqr_auto(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    (kernels().l2)(x, y)
}

/// Inner product via the dispatched kernel. No profiling — see
/// [`l2_sqr_auto`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn inner_product_auto(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    (kernels().dot)(x, y)
}

/// Squared L2 from `query` to every row of a row-major flat buffer.
/// One `DistanceCalc` count for the whole batch.
///
/// # Panics
/// Panics if `flat.len() != out.len() * query.len()`.
pub fn l2_sqr_batch_flat(query: &[f32], flat: &[f32], out: &mut [f32]) {
    let d = query.len();
    assert_eq!(
        flat.len(),
        out.len() * d,
        "flat buffer / output length mismatch"
    );
    if profile::enabled() {
        profile::count(Category::DistanceCalc, out.len() as u64);
    }
    let l2 = kernels().l2;
    for (o, row) in out.iter_mut().zip(flat.chunks_exact(d)) {
        *o = l2(query, row);
    }
}

/// Squared L2 from `query` to every row of `rows` — the batched
/// one-vs-many scan primitive the specialized engines use.
///
/// # Panics
/// Panics if `query.len() != rows.dim()` or `out.len() != rows.len()`.
pub fn l2_sqr_batch(query: &[f32], rows: &VectorSet, out: &mut [f32]) {
    assert_eq!(query.len(), rows.dim(), "dimension mismatch");
    l2_sqr_batch_flat(query, rows.as_flat(), out);
}

/// Inner product from `query` to every row of `rows`. One
/// `DistanceCalc` count for the whole batch.
///
/// # Panics
/// Panics if `query.len() != rows.dim()` or `out.len() != rows.len()`.
pub fn inner_product_batch(query: &[f32], rows: &VectorSet, out: &mut [f32]) {
    assert_eq!(query.len(), rows.dim(), "dimension mismatch");
    let d = query.len();
    assert_eq!(rows.len(), out.len(), "row / output length mismatch");
    if profile::enabled() {
        profile::count(Category::DistanceCalc, out.len() as u64);
    }
    let dot = kernels().dot;
    for (o, row) in out.iter_mut().zip(rows.as_flat().chunks_exact(d)) {
        *o = dot(query, row);
    }
}

/// Fused one-vs-many scan into a top-k sink: batched distances under one
/// `DistanceCalc` scope, then threshold-pruned pushes under one `MinHeap`
/// scope — the per-vector profiling branch and the per-push heap call
/// for rejected candidates are both gone.
///
/// `ids` supplies the id of each row; `None` numbers rows `0..n` (the
/// flat-scan case). `scratch` is caller-owned so repeated bucket scans
/// reuse one allocation. Falls back to the per-row kernel-faithful path
/// for metrics/kernels without a batched implementation (in particular
/// `DistanceKernel::Reference` keeps its dependent-chain loop and
/// per-call counting).
///
/// # Panics
/// Panics if `query.len() != rows.dim()` or `ids` is provided with a
/// length other than `rows.len()`.
pub fn scan_into<S: TopKSink>(
    metric: Metric,
    kernel: DistanceKernel,
    query: &[f32],
    rows: &VectorSet,
    ids: Option<&[u64]>,
    sink: &mut S,
    scratch: &mut Vec<f32>,
) {
    if let Some(ids) = ids {
        assert_eq!(ids.len(), rows.len(), "id / row count mismatch");
    }
    {
        let _t = profile::scoped(Category::DistanceCalc);
        metric.distance_batch(kernel, query, rows, scratch);
    }
    let _h = profile::scoped(Category::MinHeap);
    profile::count(Category::MinHeap, scratch.len() as u64);
    // Faiss-style inline threshold check: rejected candidates cost one
    // compare, never a heap call.
    let mut thr = sink.threshold();
    for (i, &dist) in scratch.iter().enumerate() {
        if dist < thr {
            let id = ids.map_or(i as u64, |s| s[i]);
            sink.push(id, dist);
            thr = sink.threshold();
        }
    }
}

/// Distances from `query` to the scattered rows `ids` of `data`, with
/// profiling hoisted to one count per call — the graph-traversal variant
/// of the batch primitives (HNSW evaluates a node's unvisited neighbors
/// together).
///
/// # Panics
/// Panics if `query.len() != data.dim()` or any id is out of range.
pub fn distance_gather(
    metric: Metric,
    kernel: DistanceKernel,
    query: &[f32],
    data: &VectorSet,
    ids: &[u32],
    out: &mut Vec<f32>,
) {
    out.clear();
    match (metric, kernel) {
        (Metric::L2, DistanceKernel::Optimized) => {
            if profile::enabled() {
                profile::count(Category::DistanceCalc, ids.len() as u64);
            }
            let l2 = kernels().l2;
            out.extend(ids.iter().map(|&i| l2(query, data.row(i as usize))));
        }
        (Metric::InnerProduct, DistanceKernel::Optimized) => {
            if profile::enabled() {
                profile::count(Category::DistanceCalc, ids.len() as u64);
            }
            let dot = kernels().dot;
            out.extend(ids.iter().map(|&i| -dot(query, data.row(i as usize))));
        }
        _ => out.extend(
            ids.iter()
                .map(|&i| metric.distance_with(kernel, query, data.row(i as usize))),
        ),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// `-1` lanes load, `0` lanes are skipped: `&TAIL_MASK[8 - rem]`
    /// yields a mask whose first `rem` lanes are set.
    static TAIL_MASK: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

    // SAFETY: caller must ensure `rem < 8` (debug-asserted)
    // and that AVX2 is available; the load then stays inside
    // TAIL_MASK: start index 8-rem plus 8 lanes ends at 16-rem <= 16.
    #[inline]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        debug_assert!(rem < 8);
        _mm256_loadu_si256(TAIL_MASK.as_ptr().add(8 - rem) as *const __m256i)
    }

    // SAFETY: register-only AVX shuffles/adds, no memory
    // access; caller must ensure AVX is available.
    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
    }

    /// 8-lane squared L2 with four independent FMA accumulators (32
    /// floats per main-loop iteration) and a masked tail, the Rust
    /// analogue of Faiss's AVX `fvec_L2sqr`.
    // SAFETY: caller must verify AVX2+FMA at runtime and pass
    // `y.len() >= x.len()`; all unaligned loads stay inside the two
    // borrowed slices (indices bounded by x.len()).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn l2_sqr_avx2(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let px = x.as_ptr();
        let py = y.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(px.add(i + 8)),
                _mm256_loadu_ps(py.add(i + 8)),
            );
            let d2 = _mm256_sub_ps(
                _mm256_loadu_ps(px.add(i + 16)),
                _mm256_loadu_ps(py.add(i + 16)),
            );
            let d3 = _mm256_sub_ps(
                _mm256_loadu_ps(px.add(i + 24)),
                _mm256_loadu_ps(py.add(i + 24)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += 32;
        }
        while i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let rem = n - i;
        if rem > 0 {
            let m = tail_mask(rem);
            let d = _mm256_sub_ps(
                _mm256_maskload_ps(px.add(i), m),
                _mm256_maskload_ps(py.add(i), m),
            );
            acc1 = _mm256_fmadd_ps(d, d, acc1);
        }
        hsum256(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ))
    }

    /// 8-lane inner product, same accumulator structure as
    /// [`l2_sqr_avx2`].
    // SAFETY: same as `l2_sqr_avx2` — AVX2+FMA verified by the
    // caller, loads bounded by x.len() within both slices.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_avx2(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let px = x.as_ptr();
        let py = y.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(px.add(i + 8)),
                _mm256_loadu_ps(py.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(px.add(i + 16)),
                _mm256_loadu_ps(py.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(px.add(i + 24)),
                _mm256_loadu_ps(py.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)), acc0);
            i += 8;
        }
        let rem = n - i;
        if rem > 0 {
            let m = tail_mask(rem);
            acc1 = _mm256_fmadd_ps(
                _mm256_maskload_ps(px.add(i), m),
                _mm256_maskload_ps(py.add(i), m),
                acc1,
            );
        }
        hsum256(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ))
    }

    /// Safe wrapper: only installed in the dispatch table after
    /// `is_x86_feature_detected!` confirms AVX2+FMA.
    pub(super) fn l2_sqr_avx2_safe(x: &[f32], y: &[f32]) -> f32 {
        // SAFETY: dispatch installed this only after
        // is_x86_feature_detected!("avx2"/"fma"); kernels validate lengths.
        unsafe { l2_sqr_avx2(x, y) }
    }

    /// Safe wrapper: see [`l2_sqr_avx2_safe`].
    pub(super) fn dot_avx2_safe(x: &[f32], y: &[f32]) -> f32 {
        // SAFETY: as in `l2_sqr_avx2_safe` — features runtime-verified.
        unsafe { dot_avx2(x, y) }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::*;

    /// 4-lane squared L2 with four independent FMA accumulators (16
    /// floats per main-loop iteration) and a scalar tail.
    // SAFETY: caller must verify NEON at runtime and pass
    // `y.len() >= x.len()`; loads are bounded by x.len() in both slices.
    #[target_feature(enable = "neon")]
    unsafe fn l2_sqr_neon(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let px = x.as_ptr();
        let py = y.as_ptr();
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 16 <= n {
            let d0 = vsubq_f32(vld1q_f32(px.add(i)), vld1q_f32(py.add(i)));
            let d1 = vsubq_f32(vld1q_f32(px.add(i + 4)), vld1q_f32(py.add(i + 4)));
            let d2 = vsubq_f32(vld1q_f32(px.add(i + 8)), vld1q_f32(py.add(i + 8)));
            let d3 = vsubq_f32(vld1q_f32(px.add(i + 12)), vld1q_f32(py.add(i + 12)));
            acc0 = vfmaq_f32(acc0, d0, d0);
            acc1 = vfmaq_f32(acc1, d1, d1);
            acc2 = vfmaq_f32(acc2, d2, d2);
            acc3 = vfmaq_f32(acc3, d3, d3);
            i += 16;
        }
        while i + 4 <= n {
            let d = vsubq_f32(vld1q_f32(px.add(i)), vld1q_f32(py.add(i)));
            acc0 = vfmaq_f32(acc0, d, d);
            i += 4;
        }
        let mut tail = 0.0f32;
        while i < n {
            let d = *px.add(i) - *py.add(i);
            tail += d * d;
            i += 1;
        }
        vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3))) + tail
    }

    /// 4-lane inner product, same structure as [`l2_sqr_neon`].
    // SAFETY: same as `l2_sqr_neon`.
    #[target_feature(enable = "neon")]
    unsafe fn dot_neon(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len();
        let px = x.as_ptr();
        let py = y.as_ptr();
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 16 <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(px.add(i)), vld1q_f32(py.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(px.add(i + 4)), vld1q_f32(py.add(i + 4)));
            acc2 = vfmaq_f32(acc2, vld1q_f32(px.add(i + 8)), vld1q_f32(py.add(i + 8)));
            acc3 = vfmaq_f32(acc3, vld1q_f32(px.add(i + 12)), vld1q_f32(py.add(i + 12)));
            i += 16;
        }
        while i + 4 <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(px.add(i)), vld1q_f32(py.add(i)));
            i += 4;
        }
        let mut tail = 0.0f32;
        while i < n {
            tail += *px.add(i) * *py.add(i);
            i += 1;
        }
        vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3))) + tail
    }

    /// Safe wrapper: only installed after NEON detection.
    pub(super) fn l2_sqr_neon_safe(x: &[f32], y: &[f32]) -> f32 {
        // SAFETY: dispatch installed this only after NEON detection.
        unsafe { l2_sqr_neon(x, y) }
    }

    /// Safe wrapper: see [`l2_sqr_neon_safe`].
    pub(super) fn dot_neon_safe(x: &[f32], y: &[f32]) -> f32 {
        // SAFETY: as in `l2_sqr_neon_safe` — NEON runtime-verified.
        unsafe { dot_neon(x, y) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_sqr_ref;
    use crate::heap::KHeap;

    fn vecs(len: usize) -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let y: Vec<f32> = (0..len).map(|i| (i as f32 * 0.71).cos() * 2.0).collect();
        (x, y)
    }

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-3 * (1.0 + b.abs())
    }

    #[test]
    fn auto_matches_reference_across_lengths() {
        // Every main-loop/tail boundary: multiples of 32 and 8, plus
        // every tail length 1..=7.
        for len in [
            0usize, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 100, 128, 960,
        ] {
            let (x, y) = vecs(len);
            assert!(
                close(l2_sqr_auto(&x, &y), l2_sqr_ref(&x, &y)),
                "l2 len={len}: {} vs {}",
                l2_sqr_auto(&x, &y),
                l2_sqr_ref(&x, &y)
            );
            let dot_ref: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!(
                close(inner_product_auto(&x, &y), dot_ref),
                "dot len={len}: {} vs {dot_ref}",
                inner_product_auto(&x, &y)
            );
        }
    }

    #[test]
    fn auto_handles_unaligned_subslices() {
        let (x, y) = vecs(130);
        for off in 1..5 {
            let a = &x[off..off + 96 + off];
            let b = &y[off..off + 96 + off];
            assert!(close(l2_sqr_auto(a, b), l2_sqr_ref(a, b)), "offset {off}");
        }
    }

    #[test]
    fn batch_matches_per_call() {
        let d = 24;
        let (q, _) = vecs(d);
        let mut rows = VectorSet::empty(d);
        for s in 0..37 {
            let v: Vec<f32> = (0..d).map(|i| ((i + s) as f32 * 0.13).sin()).collect();
            rows.push(&v);
        }
        let mut out = vec![0.0; rows.len()];
        l2_sqr_batch(&q, &rows, &mut out);
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(got, l2_sqr_auto(&q, rows.row(i)), "row {i}");
        }
        inner_product_batch(&q, &rows, &mut out);
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(got, inner_product_auto(&q, rows.row(i)), "row {i}");
        }
    }

    #[test]
    fn scan_into_matches_manual_pushes() {
        let d = 16;
        let (q, _) = vecs(d);
        let mut rows = VectorSet::empty(d);
        for s in 0..200 {
            let v: Vec<f32> = (0..d).map(|i| ((i * 7 + s) as f32 * 0.29).cos()).collect();
            rows.push(&v);
        }
        let ids: Vec<u64> = (0..rows.len() as u64).map(|i| i * 3 + 5).collect();

        let mut fused = KHeap::new(10);
        let mut scratch = Vec::new();
        scan_into(
            Metric::L2,
            DistanceKernel::Optimized,
            &q,
            &rows,
            Some(&ids),
            &mut fused,
            &mut scratch,
        );

        let mut manual = KHeap::new(10);
        for (i, v) in rows.iter().enumerate() {
            manual.push(ids[i], l2_sqr_auto(&q, v));
        }
        assert_eq!(fused.into_sorted(), manual.into_sorted());
    }

    #[test]
    fn scan_into_default_ids_are_row_indices() {
        let rows = VectorSet::from_flat(2, vec![0.0, 0.0, 5.0, 5.0, 1.0, 0.0]);
        let mut heap = KHeap::new(2);
        let mut scratch = Vec::new();
        scan_into(
            Metric::L2,
            DistanceKernel::Reference,
            &[0.0, 0.0],
            &rows,
            None,
            &mut heap,
            &mut scratch,
        );
        let out = heap.into_sorted();
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 2);
    }

    #[test]
    fn gather_matches_metric() {
        let d = 20;
        let (q, _) = vecs(d);
        let mut data = VectorSet::empty(d);
        for s in 0..50 {
            let v: Vec<f32> = (0..d).map(|i| ((i + 3 * s) as f32 * 0.41).sin()).collect();
            data.push(&v);
        }
        let ids = [49u32, 0, 7, 7, 13];
        let mut out = Vec::new();
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            distance_gather(metric, DistanceKernel::Optimized, &q, &data, &ids, &mut out);
            assert_eq!(out.len(), ids.len());
            for (&i, &got) in ids.iter().zip(&out) {
                let want =
                    metric.distance_with(DistanceKernel::Optimized, &q, data.row(i as usize));
                assert_eq!(got, want, "metric {metric:?} id {i}");
            }
        }
    }

    #[test]
    fn active_kernel_is_stable() {
        assert_eq!(active_kernel(), active_kernel());
    }
}

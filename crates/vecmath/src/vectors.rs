//! Dense row-major vector storage.

use serde::{Deserialize, Serialize};

/// An owned, dense, row-major collection of equal-dimension vectors.
///
/// This is the in-memory representation both engines start from: the
/// specialized engine keeps data in this layout permanently (direct
/// pointer access), while the generalized engine copies it into pages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VectorSet {
    d: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Create from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `d == 0` or `data.len()` is not a multiple of `d`.
    pub fn from_flat(d: usize, data: Vec<f32>) -> Self {
        assert!(d > 0, "dimension must be positive");
        assert_eq!(data.len() % d, 0, "data length must be a multiple of d");
        VectorSet { d, data }
    }

    /// An empty set of `d`-dimensional vectors.
    pub fn empty(d: usize) -> Self {
        Self::from_flat(d, Vec::new())
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.d
    }

    /// Whether the set holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Mutably borrow vector `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.d..(i + 1) * self.d]
    }

    /// Append a vector.
    ///
    /// # Panics
    /// Panics if `v.len() != dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.d, "dimension mismatch");
        self.data.extend_from_slice(v);
    }

    /// The whole flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.d)
    }

    /// Copy out a subset of rows (e.g. a training sample).
    pub fn gather(&self, indices: &[usize]) -> VectorSet {
        let mut data = Vec::with_capacity(indices.len() * self.d);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        VectorSet { d: self.d, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_rows() {
        let mut vs = VectorSet::empty(3);
        vs.push(&[1.0, 2.0, 3.0]);
        vs.push(&[4.0, 5.0, 6.0]);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_selects_rows() {
        let vs = VectorSet::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        let g = vs.gather(&[2, 0]);
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dim_panics() {
        let mut vs = VectorSet::empty(2);
        vs.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of d")]
    fn ragged_flat_panics() {
        VectorSet::from_flat(4, vec![1.0; 6]);
    }

    #[test]
    fn iter_matches_rows() {
        let vs = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f32]> = vs.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }
}

//! K-means clustering — two deliberately different implementations (RC#5).
//!
//! §VII-A of the paper traces part of the IVF_FLAT search gap to PASE and
//! Faiss *training different centroids*: both run Lloyd's algorithm, but
//! initialization and empty-cluster handling differ, so the resulting
//! clusters (and therefore per-query scan volume) differ. The paper's
//! Faiss* experiment (Figure 15) transplants PASE's centroids into Faiss
//! and watches the gap shrink.
//!
//! * [`KmeansFlavor::FaissStyle`] — random-permutation init, batched
//!   GEMM-based assignment (RC#1), empty clusters split from the largest
//!   cluster with an ε perturbation;
//! * [`KmeansFlavor::PaseStyle`] — strided init, one-at-a-time reference
//!   distance loop, empty clusters reseeded from a random training point.
//!
//! Training time is attributed to [`Category::KmeansTrain`].

use crate::distance::{l2_sqr, l2_sqr_ref, DistanceKernel};
use crate::vectors::VectorSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vdb_gemm::{l2_distance_table, GemmKernel};
use vdb_profile::{self as profile, Category};

/// Which k-means implementation to run (RC#5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KmeansFlavor {
    /// Faiss-like: random init, GEMM assignment, split-largest on empty.
    #[default]
    FaissStyle,
    /// PASE-like: strided init, scalar assignment, reseed on empty.
    PaseStyle,
}

/// Training parameters.
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    /// Number of clusters (paper parameter `c`).
    pub k: usize,
    /// Lloyd iterations (Faiss's `niter`; 10 here, matching its default
    /// order of magnitude).
    pub iters: usize,
    /// RNG seed; training is fully deterministic given the seed.
    pub seed: u64,
    /// GEMM kernel used for batched assignment in the Faiss-style flavor.
    /// `Naive` models the paper's "SGEMM disabled" ablation.
    pub gemm: GemmKernel,
}

impl Default for KmeansParams {
    fn default() -> Self {
        KmeansParams {
            k: 16,
            iters: 10,
            seed: 0,
            gemm: GemmKernel::Blas,
        }
    }
}

/// A trained codebook: `k` centroids of dimension `d`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Kmeans {
    flavor: KmeansFlavor,
    centroids: VectorSet,
}

/// Rows assigned per training batch when building the GEMM distance table;
/// bounds the table's memory to `CHUNK * k` floats.
const ASSIGN_CHUNK: usize = 256;

impl Kmeans {
    /// Run Lloyd's algorithm over `training` with the given flavor.
    ///
    /// # Panics
    /// Panics if `training` is empty or `params.k == 0`.
    pub fn train(flavor: KmeansFlavor, training: &VectorSet, params: &KmeansParams) -> Kmeans {
        let _t = profile::scoped(Category::KmeansTrain);
        assert!(params.k > 0, "k must be positive");
        assert!(!training.is_empty(), "cannot train k-means on an empty set");
        let k = params.k.min(training.len());

        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut centroids = match flavor {
            KmeansFlavor::FaissStyle => init_random(training, k, &mut rng),
            KmeansFlavor::PaseStyle => init_strided(training, k),
        };

        let n = training.len();
        let mut assignment = vec![0u32; n];
        for _iter in 0..params.iters {
            match flavor {
                KmeansFlavor::FaissStyle => {
                    assign_batched(
                        training.dim(),
                        training.as_flat(),
                        &centroids,
                        params.gemm,
                        &mut assignment,
                    );
                }
                KmeansFlavor::PaseStyle => {
                    assign_scalar(training, &centroids, &mut assignment);
                }
            }
            update_centroids(training, &assignment, k, &mut centroids);
            fix_empty_clusters(flavor, training, &assignment, &mut centroids, &mut rng);
        }

        Kmeans { flavor, centroids }
    }

    /// Wrap pre-existing centroids (the Faiss* transplant of Figure 15).
    pub fn from_centroids(flavor: KmeansFlavor, centroids: VectorSet) -> Kmeans {
        assert!(!centroids.is_empty(), "centroid set cannot be empty");
        Kmeans { flavor, centroids }
    }

    /// The trained centroids.
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.centroids.dim()
    }

    /// Flavor this codebook was trained with.
    pub fn flavor(&self) -> KmeansFlavor {
        self.flavor
    }

    /// Index and distance of the nearest centroid to `v`.
    ///
    /// The optimized kernel walks the centroids with the dispatched SIMD
    /// distance and one profiling count for the whole sweep; the
    /// reference kernel keeps the per-call path.
    pub fn nearest(&self, kernel: DistanceKernel, v: &[f32]) -> (usize, f32) {
        let mut best = (0usize, f32::INFINITY);
        match kernel {
            DistanceKernel::Optimized => {
                if profile::enabled() {
                    profile::count(Category::DistanceCalc, self.centroids.len() as u64);
                }
                for (j, c) in self.centroids.iter().enumerate() {
                    let dist = crate::simd::l2_sqr_auto(v, c);
                    if dist < best.1 {
                        best = (j, dist);
                    }
                }
            }
            DistanceKernel::Reference => {
                for (j, c) in self.centroids.iter().enumerate() {
                    let dist = l2_sqr(kernel, v, c);
                    if dist < best.1 {
                        best = (j, dist);
                    }
                }
            }
        }
        best
    }

    /// Indices (and distances) of the `nprobe` nearest centroids to `v`,
    /// closest first. Batched for the optimized kernel (see
    /// [`Kmeans::nearest`]).
    pub fn nearest_n(&self, kernel: DistanceKernel, v: &[f32], nprobe: usize) -> Vec<(usize, f32)> {
        let mut all: Vec<(usize, f32)> = match kernel {
            DistanceKernel::Optimized => {
                let mut dists = vec![0.0f32; self.centroids.len()];
                crate::simd::l2_sqr_batch(v, &self.centroids, &mut dists);
                dists.iter().enumerate().map(|(j, &d)| (j, d)).collect()
            }
            DistanceKernel::Reference => self
                .centroids
                .iter()
                .enumerate()
                .map(|(j, c)| (j, l2_sqr(kernel, v, c)))
                .collect(),
        };
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(nprobe.max(1));
        all
    }

    /// Assign every row of `xs` to its nearest centroid using batched GEMM
    /// distance tables (the Faiss adding phase, RC#1).
    pub fn assign_batch(&self, gemm: GemmKernel, xs: &VectorSet) -> Vec<u32> {
        self.assign_batch_flat(gemm, xs.dim(), xs.as_flat())
    }

    /// [`Kmeans::assign_batch`] over a borrowed row-major slice
    /// (`flat.len()` must be a multiple of `dim`). Lets callers that
    /// shard a `VectorSet` across threads assign each range in place
    /// instead of copying it into a fresh set per chunk.
    pub fn assign_batch_flat(&self, gemm: GemmKernel, dim: usize, flat: &[f32]) -> Vec<u32> {
        debug_assert_eq!(flat.len() % dim.max(1), 0, "ragged flat slice");
        let mut out = vec![0u32; flat.len() / dim.max(1)];
        assign_batched(dim, flat, &self.centroids, gemm, &mut out);
        out
    }

    /// Mean within-cluster squared distance over `xs` (clustering quality).
    pub fn mean_sq_error(&self, xs: &VectorSet) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let total: f64 = xs
            .iter()
            .map(|v| self.nearest(DistanceKernel::Optimized, v).1 as f64)
            .sum();
        total / xs.len() as f64
    }
}

fn init_random(training: &VectorSet, k: usize, rng: &mut StdRng) -> VectorSet {
    let mut idx: Vec<usize> = (0..training.len()).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    training.gather(&idx)
}

fn init_strided(training: &VectorSet, k: usize) -> VectorSet {
    let n = training.len();
    let idx: Vec<usize> = (0..k).map(|j| j * n / k).collect();
    training.gather(&idx)
}

fn assign_batched(
    d: usize,
    flat: &[f32],
    centroids: &VectorSet,
    gemm: GemmKernel,
    out: &mut [u32],
) {
    let n = out.len();
    let k = centroids.len();
    let mut row = 0usize;
    while row < n {
        let end = (row + ASSIGN_CHUNK).min(n);
        let chunk = &flat[row * d..end * d];
        let table = l2_distance_table(gemm, chunk, centroids.as_flat(), d);
        for (i, dists) in table.chunks_exact(k).enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (j, &dist) in dists.iter().enumerate() {
                if dist < best_d {
                    best_d = dist;
                    best = j;
                }
            }
            out[row + i] = best as u32;
        }
        row = end;
    }
}

fn assign_scalar(xs: &VectorSet, centroids: &VectorSet, out: &mut [u32]) {
    for (i, v) in xs.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (j, c) in centroids.iter().enumerate() {
            let dist = l2_sqr_ref(v, c);
            if dist < best_d {
                best_d = dist;
                best = j;
            }
        }
        out[i] = best as u32;
    }
}

fn update_centroids(xs: &VectorSet, assignment: &[u32], k: usize, centroids: &mut VectorSet) {
    let d = xs.dim();
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0u64; k];
    for (i, v) in xs.iter().enumerate() {
        let c = assignment[i] as usize;
        counts[c] += 1;
        let sum = &mut sums[c * d..(c + 1) * d];
        for (s, &x) in sum.iter_mut().zip(v) {
            *s += x as f64;
        }
    }
    for j in 0..k {
        if counts[j] == 0 {
            continue; // handled by fix_empty_clusters
        }
        let inv = 1.0 / counts[j] as f64;
        let dst = centroids.row_mut(j);
        let src = &sums[j * d..(j + 1) * d];
        for (dvx, &s) in dst.iter_mut().zip(src) {
            *dvx = (s * inv) as f32;
        }
    }
}

fn fix_empty_clusters(
    flavor: KmeansFlavor,
    training: &VectorSet,
    assignment: &[u32],
    centroids: &mut VectorSet,
    rng: &mut StdRng,
) {
    let k = centroids.len();
    let mut counts = vec![0usize; k];
    for &a in assignment {
        counts[a as usize] += 1;
    }
    for j in 0..k {
        if counts[j] > 0 {
            continue;
        }
        match flavor {
            KmeansFlavor::FaissStyle => {
                // Split the largest cluster: copy its centroid and nudge
                // both copies apart, as Faiss's clustering does.
                let largest = (0..k).max_by_key(|&c| counts[c]).unwrap_or(0);
                let eps = 1.0 / 1024.0;
                let src: Vec<f32> = centroids.row(largest).to_vec();
                let dst = centroids.row_mut(j);
                for (out, &v) in dst.iter_mut().zip(&src) {
                    *out = v * (1.0 + eps);
                }
                let back = centroids.row_mut(largest);
                for v in back.iter_mut() {
                    *v *= 1.0 - eps;
                }
                counts[j] = counts[largest] / 2;
                counts[largest] -= counts[j];
            }
            KmeansFlavor::PaseStyle => {
                // Reseed from a random training vector.
                let pick = rng.gen_range(0..training.len());
                let src: Vec<f32> = training.row(pick).to_vec();
                centroids.row_mut(j).copy_from_slice(&src);
                counts[j] = 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs() -> VectorSet {
        let mut vs = VectorSet::empty(2);
        let centers = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut state = 12345u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 0.5
        };
        for _ in 0..60 {
            for c in &centers {
                vs.push(&[c[0] + noise(), c[1] + noise()]);
            }
        }
        vs
    }

    #[test]
    fn recovers_separated_clusters() {
        let data = blobs();
        for flavor in [KmeansFlavor::FaissStyle, KmeansFlavor::PaseStyle] {
            let km = Kmeans::train(
                flavor,
                &data,
                &KmeansParams {
                    k: 3,
                    iters: 15,
                    seed: 7,
                    gemm: GemmKernel::Blas,
                },
            );
            assert_eq!(km.k(), 3);
            // Mean squared error should be tiny compared to blob spacing.
            assert!(km.mean_sq_error(&data) < 1.0, "flavor {flavor:?}");
        }
    }

    #[test]
    fn flavors_produce_different_centroids() {
        let data = blobs();
        let p = KmeansParams {
            k: 5,
            iters: 5,
            seed: 3,
            gemm: GemmKernel::Blas,
        };
        let a = Kmeans::train(KmeansFlavor::FaissStyle, &data, &p);
        let b = Kmeans::train(KmeansFlavor::PaseStyle, &data, &p);
        assert_ne!(a.centroids().as_flat(), b.centroids().as_flat());
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs();
        let p = KmeansParams {
            k: 4,
            iters: 8,
            seed: 11,
            gemm: GemmKernel::Blas,
        };
        let a = Kmeans::train(KmeansFlavor::FaissStyle, &data, &p);
        let b = Kmeans::train(KmeansFlavor::FaissStyle, &data, &p);
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn gemm_and_scalar_assignment_agree() {
        let data = blobs();
        let km = Kmeans::train(
            KmeansFlavor::FaissStyle,
            &data,
            &KmeansParams {
                k: 3,
                iters: 10,
                seed: 1,
                gemm: GemmKernel::Blas,
            },
        );
        let fast = km.assign_batch(GemmKernel::Blas, &data);
        let slow = km.assign_batch(GemmKernel::Naive, &data);
        // With well-separated blobs the argmin is unambiguous.
        assert_eq!(fast, slow);
        let mut scalar = vec![0u32; data.len()];
        assign_scalar(&data, km.centroids(), &mut scalar);
        assert_eq!(fast, scalar);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = VectorSet::from_flat(2, vec![1.0, 1.0, 2.0, 2.0]);
        let km = Kmeans::train(
            KmeansFlavor::FaissStyle,
            &data,
            &KmeansParams {
                k: 10,
                iters: 3,
                seed: 0,
                gemm: GemmKernel::Blas,
            },
        );
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn nearest_n_sorted_ascending() {
        let data = blobs();
        let km = Kmeans::train(
            KmeansFlavor::FaissStyle,
            &data,
            &KmeansParams {
                k: 3,
                iters: 10,
                seed: 5,
                gemm: GemmKernel::Blas,
            },
        );
        let probes = km.nearest_n(DistanceKernel::Optimized, &[0.0, 0.0], 3);
        assert_eq!(probes.len(), 3);
        assert!(probes[0].1 <= probes[1].1 && probes[1].1 <= probes[2].1);
        let (best, d0) = km.nearest(DistanceKernel::Optimized, &[0.0, 0.0]);
        assert_eq!(probes[0].0, best);
        assert_eq!(probes[0].1, d0);
    }

    #[test]
    fn no_cluster_left_empty_on_degenerate_data() {
        // All identical points: every fix-up strategy must still fill k
        // centroids.
        let data = VectorSet::from_flat(2, vec![1.0; 40]);
        for flavor in [KmeansFlavor::FaissStyle, KmeansFlavor::PaseStyle] {
            let km = Kmeans::train(
                flavor,
                &data,
                &KmeansParams {
                    k: 4,
                    iters: 5,
                    seed: 0,
                    gemm: GemmKernel::Blas,
                },
            );
            assert_eq!(km.k(), 4);
            assert!(km
                .centroids()
                .iter()
                .all(|c| c.iter().all(|x| x.is_finite())));
        }
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_training_panics() {
        Kmeans::train(
            KmeansFlavor::FaissStyle,
            &VectorSet::empty(4),
            &KmeansParams::default(),
        );
    }
}

//! Index parameters shared by both engines, and build timing.
//!
//! Names and defaults follow the paper's Table II. Keeping them here
//! guarantees the two engines are configured identically, which is the
//! paper's methodology ("the same index type and parameters", §III).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// IVF coarse-quantizer parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IvfParams {
    /// Number of clusters `c` (1000 at 1M scale, √n in general).
    pub clusters: usize,
    /// Training sample ratio `sr` (default 0.01; PASE writes it in
    /// thousandths, `10` → 0.01).
    pub sample_ratio: f64,
    /// Buckets probed at query time, `nprobe` (default 20).
    pub nprobe: usize,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams {
            clusters: 1000,
            sample_ratio: 0.01,
            nprobe: 20,
        }
    }
}

impl IvfParams {
    /// Scale cluster count to a dataset size: √n, the paper's rule
    /// (1000 for 1M, 3162 for 10M).
    pub fn scaled_to(n: usize) -> IvfParams {
        IvfParams {
            clusters: ((n as f64).sqrt().round() as usize).max(1),
            ..Default::default()
        }
    }
}

/// Product-quantization parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PqParams {
    /// Sub-vector count `m` (dataset-specific in the paper).
    pub m: usize,
    /// Codewords per subspace `c_pq` (default 256).
    pub cpq: usize,
}

impl Default for PqParams {
    fn default() -> Self {
        PqParams { m: 16, cpq: 256 }
    }
}

/// HNSW parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HnswParams {
    /// Base neighbor count `bnn` (default 16). Level 0 allows `2*bnn`.
    pub bnn: usize,
    /// Construction queue length `efb` (default 40).
    pub efb: usize,
    /// Search queue length `efs` (default 200).
    pub efs: usize,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            bnn: 16,
            efb: 40,
            efs: 200,
        }
    }
}

/// Wall-clock timing of an index build, split the way the paper's
/// Figures 3–7 report it.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BuildTiming {
    /// Training phase (k-means / PQ codebooks); zero for HNSW.
    pub train: Duration,
    /// Adding phase (inserting vectors into the structure).
    pub add: Duration,
}

impl BuildTiming {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.train + self.add
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_two() {
        let ivf = IvfParams::default();
        assert_eq!(ivf.clusters, 1000);
        assert!((ivf.sample_ratio - 0.01).abs() < 1e-12);
        assert_eq!(ivf.nprobe, 20);
        assert_eq!(PqParams::default().cpq, 256);
        let h = HnswParams::default();
        assert_eq!((h.bnn, h.efb, h.efs), (16, 40, 200));
    }

    #[test]
    fn scaled_clusters_is_sqrt_n() {
        assert_eq!(IvfParams::scaled_to(1_000_000).clusters, 1000);
        assert_eq!(IvfParams::scaled_to(10_000_000).clusters, 3162);
        assert_eq!(IvfParams::scaled_to(0).clusters, 1);
    }

    #[test]
    fn timing_total_adds_up() {
        let t = BuildTiming {
            train: Duration::from_millis(10),
            add: Duration::from_millis(25),
        };
        assert_eq!(t.total(), Duration::from_millis(35));
    }
}

//! Shared vector math for both vector-database engines.
//!
//! Everything in this crate is engine-agnostic: both the specialized
//! (Faiss-like) and generalized (PASE-like) engines consume these
//! primitives, but each engine picks the *variant* that matches its real
//! counterpart — that choice is precisely what the paper's root causes
//! are about:
//!
//! | Module | Root cause | Variants |
//! |---|---|---|
//! | [`distance`] | — | optimized unrolled kernel vs `fvec_L2sqr_ref`-style reference loop |
//! | [`simd`] | RC#1 | runtime-dispatched AVX2/NEON kernels and batched one-vs-many scans |
//! | [`heap`] | RC#6 | size-*k* bounded heap vs size-*n* heap |
//! | [`kmeans`] | RC#5 | Faiss-style vs PASE-style clustering |
//! | [`pq`] | RC#7 | optimized vs straightforward ADC precomputed table |
//!
//! The SGEMM decision (RC#1) lives in [`vdb_gemm`] and threads through
//! [`kmeans`] as a parameter.

pub mod distance;
pub mod heap;
pub mod kmeans;
pub mod metric;
pub mod parallel;
pub mod params;
pub mod pq;
pub mod sampling;
pub mod simd;
pub mod sq;
pub mod vectors;

pub use distance::DistanceKernel;
pub use heap::{KHeap, NHeap, Neighbor, TopKCollector, TopKSink, TopKStrategy};
pub use kmeans::{Kmeans, KmeansFlavor, KmeansParams};
pub use metric::Metric;
pub use params::{BuildTiming, HnswParams, IvfParams, PqParams};
pub use pq::{PqTableMode, ProductQuantizer};
pub use sq::ScalarQuantizer;
pub use vectors::VectorSet;

//! Minimal fork-join helpers over crossbeam scoped threads.
//!
//! The engine's parallelism (RC#3) is deliberately simple: static range
//! partitioning with per-thread outputs merged by the caller. That is how
//! Faiss parallelizes the IVF adding phase and intra-query search, and it
//! is the pattern PASE lacks.

use crossbeam::thread;

/// Split `0..n` into `threads` contiguous chunks and run `work(range)`
/// on each concurrently; returns per-chunk results in order.
///
/// With `threads == 1` (or a trivial range) the work runs inline, so
/// serial benchmarks pay no thread-spawn cost.
pub fn map_chunks<R, F>(n: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return vec![work(0..n)];
    }
    let chunk = n.div_ceil(threads);
    thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let work = &work;
                // Clamp both ends: ceil-division can push the last
                // threads past n (e.g. n=20, threads=8 → chunk=3,
                // t=7 would start at 21).
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move |_| work(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed")
}

/// Split an explicit list of items into `threads` chunks and map each
/// chunk; returns per-chunk results in order.
pub fn map_item_chunks<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let ranges = map_chunks(items.len(), threads, |r| r);
    let mut flat = Vec::with_capacity(ranges.len());
    // map_chunks already handled threads==1 inline; reuse its chunking by
    // running the actual work over the computed ranges.
    if ranges.len() <= 1 {
        for r in ranges {
            flat.push(work(&items[r]));
        }
        return flat;
    }
    thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let work = &work;
                let slice = &items[r];
                s.spawn(move |_| work(slice))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_range_without_overlap() {
        let parts = map_chunks(103, 4, |r| r);
        let mut covered = [false; 103];
        for r in parts {
            for i in r {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn single_thread_runs_inline() {
        let parts = map_chunks(10, 1, |r| r.len());
        assert_eq!(parts, vec![10]);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let parts = map_chunks(0, 4, |_| 0);
        assert!(parts.is_empty());
    }

    #[test]
    fn ceil_chunking_never_overruns() {
        // n=20, threads=8 → chunk=3; the 8th range must clamp to 20..20.
        let parts = map_chunks(20, 8, |r| r);
        assert!(parts.iter().all(|r| r.start <= r.end && r.end <= 20));
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn more_threads_than_items_clamped() {
        let parts = map_chunks(3, 16, |r| r.len());
        assert_eq!(parts.iter().sum::<usize>(), 3);
        assert!(parts.len() <= 3);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let serial: usize = (0..1000).sum();
        let parts = map_chunks(1000, 8, |r| r.sum::<usize>());
        assert_eq!(parts.iter().sum::<usize>(), serial);
    }

    #[test]
    fn item_chunks_see_every_item_once() {
        let items: Vec<u32> = (0..57).collect();
        let sums = map_item_chunks(&items, 4, |chunk| chunk.iter().sum::<u32>());
        assert_eq!(sums.iter().sum::<u32>(), (0..57).sum());
    }
}

/// Persistent-worker round executor for intra-query parallelism.
///
/// Spawns `threads` workers **once** and reuses them for `n_rounds`
/// rounds (one round per query). In each round every worker computes
/// `work(round, worker)`; when all have finished, `reduce(round,
/// per_worker_results)` runs on the caller thread before the next round
/// starts. This is how real engines parallelize single queries — an
/// OpenMP-style pool, not a fork/join per query, whose spawn cost would
/// swamp sub-millisecond searches.
pub fn rounds<R, W, Red>(n_rounds: usize, threads: usize, work: W, mut reduce: Red)
where
    R: Send,
    W: Fn(usize, usize) -> R + Sync,
    Red: FnMut(usize, Vec<R>),
{
    assert!(threads > 0, "need at least one worker");
    if n_rounds == 0 {
        return;
    }
    if threads == 1 {
        for q in 0..n_rounds {
            let r = work(q, 0);
            reduce(q, vec![r]);
        }
        return;
    }

    use std::sync::Barrier;
    let barrier = Barrier::new(threads + 1);
    let slots: Vec<parking_lot::Mutex<Option<R>>> = (0..threads)
        .map(|_| parking_lot::Mutex::new(None))
        .collect();

    thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let slots = &slots;
            let work = &work;
            s.spawn(move |_| {
                for q in 0..n_rounds {
                    barrier.wait(); // round start
                    let r = work(q, t);
                    *slots[t].lock() = Some(r);
                    barrier.wait(); // round end
                }
            });
        }
        for q in 0..n_rounds {
            barrier.wait();
            barrier.wait();
            let results: Vec<R> = slots
                .iter()
                .map(|m| m.lock().take().expect("worker wrote"))
                .collect();
            reduce(q, results);
        }
    })
    .expect("round executor worker panicked");
}

#[cfg(test)]
mod round_tests {
    use super::*;

    #[test]
    fn rounds_runs_every_pair_once() {
        let mut seen = Vec::new();
        rounds(
            5,
            3,
            |q, t| (q, t),
            |q, results| {
                assert_eq!(results.len(), 3);
                for (rq, _) in &results {
                    assert_eq!(*rq, q);
                }
                seen.push(q);
            },
        );
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rounds_single_thread_inline() {
        let mut total = 0;
        rounds(4, 1, |q, _| q * 2, |_, rs| total += rs[0]);
        assert_eq!(total, 2 + 4 + 6);
    }

    #[test]
    fn rounds_zero_rounds_noop() {
        rounds(0, 4, |_, _| 0, |_, _| panic!("no rounds expected"));
    }

    #[test]
    fn rounds_reduce_sees_results_in_worker_order() {
        rounds(2, 4, |_, t| t, |_, rs| assert_eq!(rs, vec![0, 1, 2, 3]));
    }
}

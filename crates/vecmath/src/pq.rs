//! Product quantization (the PQ in IVF_PQ) — RC#7.
//!
//! A vector is split into `m` sub-vectors; each subspace gets its own
//! `cpq`-entry codebook (k-means over the sub-vectors), so a vector is
//! encoded in `m` bytes (with `cpq ≤ 256`). Asymmetric distance
//! computation (ADC) answers queries against codes via a per-query
//! *precomputed table* of query-sub-vector ↔ codeword distances.
//!
//! §VII-B of the paper: Faiss builds that table by decomposing
//! `‖q − c‖² = ‖q‖² + ‖c‖² − 2·q·c` with codeword norms `‖c‖²` computed
//! once at *training* time, while PASE recomputes full subtract-square
//! distances per query. Both paths are implemented as [`PqTableMode`]s.

use crate::distance::l2_sqr_ref;
use crate::kmeans::{Kmeans, KmeansFlavor, KmeansParams};
use crate::vectors::VectorSet;
use serde::{Deserialize, Serialize};
use vdb_gemm::GemmKernel;
use vdb_profile::{self as profile, Category};

/// How the per-query ADC table is computed (RC#7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PqTableMode {
    /// Norms-plus-inner-product decomposition with codeword norms
    /// precomputed at training time (Faiss).
    #[default]
    Optimized,
    /// Full subtract-square distance per table entry, recomputed every
    /// query (PASE).
    Straightforward,
}

/// A trained product quantizer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProductQuantizer {
    d: usize,
    m: usize,
    sub_d: usize,
    cpq: usize,
    /// Codebooks, `m * cpq * sub_d` floats: subspace-major, then codeword.
    codebooks: Vec<f32>,
    /// `‖c‖²` for every codeword (`m * cpq`), filled at training time.
    codeword_norms: Vec<f32>,
}

impl ProductQuantizer {
    /// Train codebooks over `training`.
    ///
    /// `m` is the number of sub-vectors (paper Table II), `cpq` the number
    /// of PQ-refined clusters per subspace (≤ 256 so codes fit in a byte).
    ///
    /// # Panics
    /// Panics if `d % m != 0`, `cpq` is 0 or > 256, or `training` is empty.
    pub fn train(
        training: &VectorSet,
        m: usize,
        cpq: usize,
        flavor: KmeansFlavor,
        params: &KmeansParams,
    ) -> ProductQuantizer {
        let d = training.dim();
        assert!(
            m > 0 && d.is_multiple_of(m),
            "d ({d}) must be divisible by m ({m})"
        );
        assert!(cpq > 0 && cpq <= 256, "cpq must be in 1..=256");
        assert!(!training.is_empty(), "cannot train PQ on an empty set");
        let sub_d = d / m;

        let mut codebooks = Vec::with_capacity(m * cpq * sub_d);
        for sub in 0..m {
            // Gather this subspace's slice of every training vector.
            let mut sub_vecs = VectorSet::empty(sub_d);
            for v in training.iter() {
                sub_vecs.push(&v[sub * sub_d..(sub + 1) * sub_d]);
            }
            let km = Kmeans::train(
                flavor,
                &sub_vecs,
                &KmeansParams {
                    k: cpq,
                    iters: params.iters,
                    seed: params.seed.wrapping_add(sub as u64),
                    gemm: params.gemm,
                },
            );
            codebooks.extend_from_slice(km.centroids().as_flat());
            // If k was clamped (fewer training rows than cpq), repeat the
            // last centroid so the table layout stays rectangular.
            let trained = km.k();
            for _ in trained..cpq {
                let last = codebooks[codebooks.len() - sub_d..].to_vec();
                codebooks.extend_from_slice(&last);
            }
        }

        let codeword_norms = codebooks
            .chunks_exact(sub_d)
            .map(|c| c.iter().map(|x| x * x).sum())
            .collect();

        ProductQuantizer {
            d,
            m,
            sub_d,
            cpq,
            codebooks,
            codeword_norms,
        }
    }

    /// Full vector dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of sub-vector partitions.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codewords per subspace.
    pub fn cpq(&self) -> usize {
        self.cpq
    }

    /// Bytes per encoded vector.
    pub fn code_len(&self) -> usize {
        self.m
    }

    /// Codeword `j` of subspace `sub`.
    #[inline]
    pub fn codeword(&self, sub: usize, j: usize) -> &[f32] {
        let base = (sub * self.cpq + j) * self.sub_d;
        &self.codebooks[base..base + self.sub_d]
    }

    /// Encode a vector to `m` bytes.
    ///
    /// # Panics
    /// Panics if `v.len() != dim()`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.d, "dimension mismatch");
        let mut code = Vec::with_capacity(self.m);
        for sub in 0..self.m {
            let q = &v[sub * self.sub_d..(sub + 1) * self.sub_d];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for j in 0..self.cpq {
                let dist = crate::simd::l2_sqr_auto(q, self.codeword(sub, j));
                if dist < best_d {
                    best_d = dist;
                    best = j;
                }
            }
            code.push(best as u8);
        }
        code
    }

    /// Reconstruct the vector a code represents (centroid concatenation).
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "code length mismatch");
        let mut v = Vec::with_capacity(self.d);
        for (sub, &j) in code.iter().enumerate() {
            v.extend_from_slice(self.codeword(sub, j as usize));
        }
        v
    }

    /// Build the per-query ADC table: `m * cpq` entries, entry
    /// `[sub * cpq + j]` is the squared distance between the query's
    /// `sub`-th slice and codeword `j`.
    pub fn adc_table(&self, mode: PqTableMode, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.d, "dimension mismatch");
        let _t = profile::scoped(Category::PqTable);
        let mut table = vec![0.0f32; self.m * self.cpq];
        match mode {
            PqTableMode::Straightforward => {
                // PASE: recompute a full subtract-square distance per entry.
                for sub in 0..self.m {
                    let q = &query[sub * self.sub_d..(sub + 1) * self.sub_d];
                    for j in 0..self.cpq {
                        table[sub * self.cpq + j] = l2_sqr_ref(q, self.codeword(sub, j));
                    }
                }
            }
            PqTableMode::Optimized => {
                // Faiss: ‖q‖² + ‖c‖² − 2 q·c with ‖c‖² from training time
                // and the dot computed by the dispatched SIMD kernel.
                for sub in 0..self.m {
                    let q = &query[sub * self.sub_d..(sub + 1) * self.sub_d];
                    let qn = crate::simd::inner_product_auto(q, q);
                    let row = &mut table[sub * self.cpq..(sub + 1) * self.cpq];
                    for (j, out) in row.iter_mut().enumerate() {
                        let dot = crate::simd::inner_product_auto(q, self.codeword(sub, j));
                        *out = (qn + self.codeword_norms[sub * self.cpq + j] - 2.0 * dot).max(0.0);
                    }
                }
            }
        }
        table
    }

    /// Approximate squared distance between the query behind `table` and
    /// an encoded vector: `Σ_sub table[sub][code[sub]]`.
    #[inline]
    pub fn adc_distance(&self, table: &[f32], code: &[u8]) -> f32 {
        debug_assert_eq!(table.len(), self.m * self.cpq);
        debug_assert_eq!(code.len(), self.m);
        let mut acc = 0.0f32;
        for (sub, &j) in code.iter().enumerate() {
            acc += table[sub * self.cpq + j as usize];
        }
        acc
    }

    /// Batched LUT scan: ADC distances for every packed code in `codes`
    /// (`out.len()` codes of `code_len()` bytes each, back to back).
    ///
    /// Four independent accumulators walk four subspaces per iteration,
    /// breaking [`ProductQuantizer::adc_distance`]'s dependent chain of
    /// table lookups; no per-code profiling or bounds re-checks. Callers
    /// attribute the whole batch.
    ///
    /// # Panics
    /// Panics if `codes.len() != out.len() * code_len()`.
    pub fn adc_distance_batch(&self, table: &[f32], codes: &[u8], out: &mut [f32]) {
        debug_assert_eq!(table.len(), self.m * self.cpq);
        assert_eq!(
            codes.len(),
            out.len() * self.m,
            "packed codes / output length mismatch"
        );
        for (o, code) in out.iter_mut().zip(codes.chunks_exact(self.m)) {
            *o = self.adc_distance_unrolled(table, code);
        }
    }

    #[inline]
    fn adc_distance_unrolled(&self, table: &[f32], code: &[u8]) -> f32 {
        let cpq = self.cpq;
        let mut acc = [0.0f32; 4];
        let mut chunks = code.chunks_exact(4);
        let mut base = 0usize;
        for ch in chunks.by_ref() {
            acc[0] += table[base + ch[0] as usize];
            acc[1] += table[base + cpq + ch[1] as usize];
            acc[2] += table[base + 2 * cpq + ch[2] as usize];
            acc[3] += table[base + 3 * cpq + ch[3] as usize];
            base += 4 * cpq;
        }
        let mut tail = 0.0f32;
        for (i, &j) in chunks.remainder().iter().enumerate() {
            tail += table[base + i * cpq + j as usize];
        }
        acc[0] + acc[1] + acc[2] + acc[3] + tail
    }

    /// In-memory size of the codebooks in bytes (for the index-size
    /// experiments, Figure 12).
    pub fn codebook_bytes(&self) -> usize {
        self.codebooks.len() * std::mem::size_of::<f32>()
    }
}

/// Train a PQ with default clustering parameters (used by both engines;
/// they differ via `flavor` and `gemm`).
pub fn train_default(
    training: &VectorSet,
    m: usize,
    cpq: usize,
    flavor: KmeansFlavor,
    seed: u64,
    gemm: GemmKernel,
) -> ProductQuantizer {
    ProductQuantizer::train(
        training,
        m,
        cpq,
        flavor,
        &KmeansParams {
            k: cpq,
            iters: 8,
            seed,
            gemm,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(n: usize, d: usize) -> VectorSet {
        let mut vs = VectorSet::empty(d);
        let mut state = 99u64;
        for _ in 0..n {
            let v: Vec<f32> = (0..d)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as f32 / (1u64 << 31) as f32
                })
                .collect();
            vs.push(&v);
        }
        vs
    }

    fn small_pq() -> (ProductQuantizer, VectorSet) {
        let data = sample_data(300, 8);
        let pq = train_default(&data, 4, 16, KmeansFlavor::FaissStyle, 42, GemmKernel::Blas);
        (pq, data)
    }

    #[test]
    fn encode_decode_reduces_error_vs_random_codeword() {
        let (pq, data) = small_pq();
        let v = data.row(0);
        let decoded = pq.decode(&pq.encode(v));
        let err = l2_sqr_ref(v, &decoded);
        // The nearest-codeword reconstruction must beat an arbitrary one.
        let arbitrary = pq.decode(&vec![7u8; pq.code_len()]);
        let arbitrary_err = l2_sqr_ref(v, &arbitrary);
        assert!(err <= arbitrary_err);
    }

    #[test]
    fn code_length_is_m() {
        let (pq, data) = small_pq();
        assert_eq!(pq.encode(data.row(3)).len(), 4);
    }

    #[test]
    fn table_modes_agree() {
        let (pq, data) = small_pq();
        let q = data.row(5);
        let fast = pq.adc_table(PqTableMode::Optimized, q);
        let slow = pq.adc_table(PqTableMode::Straightforward, q);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn adc_distance_matches_decoded_distance() {
        let (pq, data) = small_pq();
        let q = data.row(1);
        let x = data.row(2);
        let code = pq.encode(x);
        let table = pq.adc_table(PqTableMode::Optimized, q);
        let adc = pq.adc_distance(&table, &code);
        let direct = l2_sqr_ref(q, &pq.decode(&code));
        assert!(
            (adc - direct).abs() < 1e-3 * (1.0 + direct),
            "{adc} vs {direct}"
        );
    }

    #[test]
    fn self_distance_via_adc_is_small() {
        let (pq, data) = small_pq();
        let v = data.row(7);
        let table = pq.adc_table(PqTableMode::Optimized, v);
        let adc = pq.adc_distance(&table, &pq.encode(v));
        // ADC distance to own code equals quantization error, which is
        // bounded by distance to any codeword combination.
        let decoded = pq.decode(&pq.encode(v));
        let qerr = l2_sqr_ref(v, &decoded);
        assert!((adc - qerr).abs() < 1e-3 * (1.0 + qerr));
    }

    #[test]
    #[should_panic(expected = "divisible by m")]
    fn indivisible_m_panics() {
        let data = sample_data(10, 7);
        ProductQuantizer::train(
            &data,
            2,
            4,
            KmeansFlavor::FaissStyle,
            &KmeansParams::default(),
        );
    }

    #[test]
    fn handles_fewer_training_rows_than_cpq() {
        let data = sample_data(5, 4);
        let pq = train_default(&data, 2, 16, KmeansFlavor::FaissStyle, 0, GemmKernel::Blas);
        assert_eq!(pq.cpq(), 16);
        // Every codeword must be finite even though only 5 were trained.
        let q = data.row(0);
        let table = pq.adc_table(PqTableMode::Optimized, q);
        assert!(table.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn adc_batch_matches_per_code() {
        let (pq, data) = small_pq();
        let table = pq.adc_table(PqTableMode::Optimized, data.row(9));
        let mut packed = Vec::new();
        for i in 10..40 {
            packed.extend_from_slice(&pq.encode(data.row(i)));
        }
        let n = packed.len() / pq.code_len();
        let mut out = vec![0.0f32; n];
        pq.adc_distance_batch(&table, &packed, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let code = &packed[i * pq.code_len()..(i + 1) * pq.code_len()];
            assert_eq!(got, pq.adc_distance(&table, code), "code {i}");
        }
    }

    #[test]
    fn codebook_bytes_accounts_all_codewords() {
        let (pq, _) = small_pq();
        assert_eq!(pq.codebook_bytes(), 4 * 16 * 2 * 4); // m*cpq*sub_d*sizeof(f32)
    }
}

//! Scalar distance kernels.
//!
//! Two implementations of squared-L2 and inner product:
//!
//! * [`DistanceKernel::Optimized`] — dispatches to the best kernel the
//!   host supports via [`crate::simd`] (explicit AVX2+FMA or NEON, with
//!   the 8-wide unrolled loop below as the portable fallback), the Rust
//!   analogue of Faiss's SIMD `fvec_L2sqr`;
//! * [`DistanceKernel::Reference`] — the dependent-chain scalar loop,
//!   matching PASE's `fvec_L2sqr_ref`, which the paper's profiles show as
//!   the IVF-build bottleneck (§V-A). Never dispatched — this arm is the
//!   RC#1 ablation baseline and must stay a dependent chain.
//!
//! Every call is attributed to [`vdb_profile::Category::DistanceCalc`] when
//! profiling is enabled, which is how the breakdown tables (Table V,
//! Figure 8) are produced.

use vdb_profile::{count, enabled, Category};

/// Which scalar distance kernel to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DistanceKernel {
    /// Unrolled, multi-accumulator kernel (Faiss-like).
    #[default]
    Optimized,
    /// Simple dependent-chain loop (`fvec_L2sqr_ref`, PASE-like).
    Reference,
}

/// Squared L2 distance between two equal-length vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn l2_sqr(kernel: DistanceKernel, x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    if enabled() {
        count(Category::DistanceCalc, 1);
    }
    match kernel {
        DistanceKernel::Optimized => crate::simd::l2_sqr_auto(x, y),
        DistanceKernel::Reference => l2_sqr_ref(x, y),
    }
}

/// Inner product of two equal-length vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn inner_product(kernel: DistanceKernel, x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    if enabled() {
        count(Category::DistanceCalc, 1);
    }
    match kernel {
        DistanceKernel::Optimized => crate::simd::inner_product_auto(x, y),
        DistanceKernel::Reference => dot_ref(x, y),
    }
}

/// Cosine distance `1 − (x·y)/(‖x‖‖y‖)`; `1.0` if either vector is zero.
///
/// Attributed to [`Category::DistanceCalc`] like the other metrics so
/// cosine-configured HNSW breakdowns stay comparable.
pub fn cosine_distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    if enabled() {
        count(Category::DistanceCalc, 1);
    }
    let dot = crate::simd::inner_product_auto(x, y);
    let nx = crate::simd::inner_product_auto(x, x).sqrt();
    let ny = crate::simd::inner_product_auto(y, y).sqrt();
    if nx == 0.0 || ny == 0.0 {
        1.0
    } else {
        1.0 - dot / (nx * ny)
    }
}

/// The reference (PASE-style) squared-L2 loop: a single accumulator, so
/// every iteration depends on the previous one.
#[inline]
pub fn l2_sqr_ref(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..x.len() {
        let diff = x[i] - y[i];
        acc += diff * diff;
    }
    acc
}

#[inline]
fn dot_ref(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// Unrolled squared-L2 with four independent accumulators over 8-element
/// chunks — breaks the dependency chain so the compiler vectorizes it.
#[inline]
pub fn l2_sqr_unrolled(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (xs, ys) in xc.by_ref().zip(yc.by_ref()) {
        for lane in 0..4 {
            let d0 = xs[2 * lane] - ys[2 * lane];
            let d1 = xs[2 * lane + 1] - ys[2 * lane + 1];
            acc[lane] += d0 * d0 + d1 * d1;
        }
    }
    let mut tail = 0.0f32;
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        let d = a - b;
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Unrolled inner product, same accumulator structure as
/// [`l2_sqr_unrolled`]. Serves as the portable fallback in the
/// [`crate::simd`] dispatch table.
#[inline]
pub fn dot_unrolled(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (xs, ys) in xc.by_ref().zip(yc.by_ref()) {
        for lane in 0..4 {
            acc[lane] += xs[2 * lane] * ys[2 * lane] + xs[2 * lane + 1] * ys[2 * lane + 1];
        }
    }
    let mut tail = 0.0f32;
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += a * b;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kernels_agree_on_small_vectors() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 8.0];
        let expected = 9.0 + 16.0 + 25.0;
        assert_eq!(l2_sqr(DistanceKernel::Optimized, &x, &y), expected);
        assert_eq!(l2_sqr(DistanceKernel::Reference, &x, &y), expected);
    }

    #[test]
    fn empty_vectors_have_zero_distance() {
        assert_eq!(l2_sqr(DistanceKernel::Optimized, &[], &[]), 0.0);
        assert_eq!(inner_product(DistanceKernel::Reference, &[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_lengths_panic() {
        l2_sqr(DistanceKernel::Optimized, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn unrolled_handles_non_multiple_of_eight() {
        for len in [1usize, 7, 8, 9, 15, 16, 17, 100, 128, 960] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.1).sin()).collect();
            let y: Vec<f32> = (0..len).map(|i| (i as f32 * 0.2).cos()).collect();
            let fast = l2_sqr_unrolled(&x, &y);
            let slow = l2_sqr_ref(&x, &y);
            assert!(
                (fast - slow).abs() < 1e-3 * (1.0 + slow),
                "len={len}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn cosine_of_zero_vector_is_one() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    proptest! {
        #[test]
        fn prop_kernels_agree(v in proptest::collection::vec(-100.0f32..100.0, 0..64)) {
            let y: Vec<f32> = v.iter().map(|x| x * 0.5 + 1.0).collect();
            let fast = l2_sqr_unrolled(&v, &y);
            let slow = l2_sqr_ref(&v, &y);
            prop_assert!((fast - slow).abs() <= 1e-3 * (1.0 + slow.abs()));
        }

        #[test]
        fn prop_l2_symmetric(v in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let y: Vec<f32> = v.iter().rev().copied().collect();
            let xy = l2_sqr_ref(&v, &y);
            let yx = l2_sqr_ref(&y, &v);
            prop_assert_eq!(xy, yx);
        }

        #[test]
        fn prop_l2_nonnegative(v in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let y: Vec<f32> = v.iter().map(|x| -x).collect();
            prop_assert!(l2_sqr_unrolled(&v, &y) >= 0.0);
        }
    }
}

//! Similarity metrics.
//!
//! PASE encodes the metric as an integer in the index options (`0` =
//! Euclidean in the paper's `CREATE INDEX` example); Faiss has
//! `MetricType`. Both engines here share this enum. All metrics are
//! normalized to *distances* (smaller = more similar) so heaps and result
//! ordering are uniform.

use crate::distance::{cosine_distance, inner_product, l2_sqr, DistanceKernel};
use crate::vectors::VectorSet;
use serde::{Deserialize, Serialize};

/// Vector similarity metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance (PASE distance type 0).
    #[default]
    L2,
    /// Negated inner product, so smaller is still better (PASE type 1).
    InnerProduct,
    /// Cosine distance `1 − cos(x, y)` (PASE type 2).
    Cosine,
}

impl Metric {
    /// Distance between two vectors under this metric using the optimized
    /// kernels.
    #[inline]
    pub fn distance(self, x: &[f32], y: &[f32]) -> f32 {
        self.distance_with(DistanceKernel::Optimized, x, y)
    }

    /// Distance using an explicit kernel choice (the reference kernel is
    /// PASE's `fvec_L2sqr_ref` code path).
    #[inline]
    pub fn distance_with(self, kernel: DistanceKernel, x: &[f32], y: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sqr(kernel, x, y),
            Metric::InnerProduct => -inner_product(kernel, x, y),
            Metric::Cosine => cosine_distance(x, y),
        }
    }

    /// Distances from `query` to every row of `rows`, resizing `out` to
    /// `rows.len()`.
    ///
    /// With [`DistanceKernel::Optimized`] the L2 and inner-product
    /// metrics go through the [`crate::simd`] batch primitives (one
    /// profiling count per batch); every other combination falls back to
    /// per-row [`Metric::distance_with`], so the Reference ablation arm
    /// keeps its dependent-chain loop and per-call attribution.
    pub fn distance_batch(
        self,
        kernel: DistanceKernel,
        query: &[f32],
        rows: &VectorSet,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.resize(rows.len(), 0.0);
        match (self, kernel) {
            (Metric::L2, DistanceKernel::Optimized) => {
                crate::simd::l2_sqr_batch(query, rows, out);
            }
            (Metric::InnerProduct, DistanceKernel::Optimized) => {
                crate::simd::inner_product_batch(query, rows, out);
                for v in out.iter_mut() {
                    *v = -*v;
                }
            }
            _ => {
                for (o, row) in out.iter_mut().zip(rows.iter()) {
                    *o = self.distance_with(kernel, query, row);
                }
            }
        }
    }

    /// PASE's integer code for this metric (used by the SQL layer's
    /// `distance_type` index option).
    pub fn pase_code(self) -> u32 {
        match self {
            Metric::L2 => 0,
            Metric::InnerProduct => 1,
            Metric::Cosine => 2,
        }
    }

    /// Parse PASE's integer code.
    pub fn from_pase_code(code: u32) -> Option<Metric> {
        match code {
            0 => Some(Metric::L2),
            1 => Some(Metric::InnerProduct),
            2 => Some(Metric::Cosine),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_of_identical_vectors_is_zero() {
        let v = [1.0, -2.0, 3.5];
        assert_eq!(Metric::L2.distance(&v, &v), 0.0);
    }

    #[test]
    fn l2_is_squared_euclidean() {
        assert_eq!(Metric::L2.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn inner_product_smaller_is_better() {
        let q = [1.0, 0.0];
        let close = [10.0, 0.0];
        let far = [0.1, 0.0];
        assert!(
            Metric::InnerProduct.distance(&q, &close) < Metric::InnerProduct.distance(&q, &far)
        );
    }

    #[test]
    fn cosine_ignores_magnitude() {
        let a = [1.0, 1.0];
        let b = [5.0, 5.0];
        assert!(Metric::Cosine.distance(&a, &b).abs() < 1e-6);
        let c = [-1.0, -1.0];
        assert!((Metric::Cosine.distance(&a, &c) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pase_codes_round_trip() {
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            assert_eq!(Metric::from_pase_code(m.pase_code()), Some(m));
        }
        assert_eq!(Metric::from_pase_code(7), None);
    }
}

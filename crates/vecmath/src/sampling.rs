//! Training-sample selection.
//!
//! IVF training (paper Table II) clusters a subsample of the data chosen
//! by a sampling ratio `sr` (default 0.01). PASE expresses the ratio in
//! thousandths in its `CREATE INDEX` options (`10` → 10/1000).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministically pick `max(min_count, ceil(n * ratio))` distinct row
/// indices out of `n`, capped at `n`.
///
/// # Panics
/// Panics if `ratio` is not within `(0, 1]`.
pub fn sample_indices(n: usize, ratio: f64, min_count: usize, seed: u64) -> Vec<usize> {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "sampling ratio must be in (0, 1]"
    );
    let want = ((n as f64 * ratio).ceil() as usize).max(min_count).min(n);
    let mut all: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    all.partial_shuffle(&mut rng, want);
    let mut picked: Vec<usize> = all.into_iter().take(want).collect();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic() {
        let a = sample_indices(1000, 0.01, 1, 42);
        let b = sample_indices(1000, 0.01, 1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = sample_indices(1000, 0.1, 1, 1);
        let b = sample_indices(1000, 0.1, 1, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_ratio_and_min() {
        assert_eq!(sample_indices(1000, 0.01, 1, 0).len(), 10);
        // min_count dominates small ratios.
        assert_eq!(sample_indices(1000, 0.001, 50, 0).len(), 50);
        // capped at n
        assert_eq!(sample_indices(10, 1.0, 100, 0).len(), 10);
    }

    #[test]
    fn indices_are_distinct_and_in_range() {
        let s = sample_indices(100, 0.5, 1, 7);
        let mut sorted = s.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len());
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "sampling ratio")]
    fn zero_ratio_panics() {
        sample_indices(10, 0.0, 1, 0);
    }
}

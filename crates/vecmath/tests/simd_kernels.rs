//! Cross-kernel agreement for the dispatched SIMD layer.
//!
//! The AVX2/NEON kernels reassociate sums (4 independent accumulators,
//! lane-wise adds), so they cannot be bit-identical to the reference
//! dependent chain — but they must agree within relative tolerance for
//! **every** dimension, including non-multiples of 8 (masked tails)
//! and unaligned sub-slices. `l2_sqr_auto`/`inner_product_auto` hit
//! whatever kernel the host dispatches to, so on an AVX2 machine this
//! exercises the explicit `std::arch` path and under
//! `VDB_FORCE_SCALAR=1` (CI's second test job) the portable fallback.

use proptest::prelude::*;
use vdb_vecmath::distance::{inner_product, l2_sqr_ref, l2_sqr_unrolled, DistanceKernel};
use vdb_vecmath::simd;

fn pseudo_random(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 1.0
        })
        .collect()
}

/// Relative tolerance for reassociated f32 sums (L2: all terms are
/// non-negative, so the result's magnitude bounds the terms').
fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + b.abs())
}

/// Dot products cancel, so the error scales with the terms' magnitude
/// Σ|xᵢyᵢ|, not the result's.
fn dot_close(a: f32, b: f32, x: &[f32], y: &[f32]) -> bool {
    let mag: f32 = x.iter().zip(y).map(|(p, q)| (p * q).abs()).sum();
    (a - b).abs() <= 1e-4 * (1.0 + mag)
}

/// Reference dot product (dependent chain): `inner_product` returns the
/// raw dot — turning it into a distance (negation) happens at the
/// `Metric` layer, not here.
fn dot_ref(x: &[f32], y: &[f32]) -> f32 {
    inner_product(DistanceKernel::Reference, x, y)
}

/// Every dimension 1..=1024 — deterministic, so the masked-tail cases
/// (d mod 8 ∈ 1..=7) and the sub-register cases (d < 8) are all hit.
#[test]
fn all_dims_agree_l2_and_dot() {
    for d in 1..=1024usize {
        let x = pseudo_random(d, d as u64);
        let y = pseudo_random(d, d as u64 + 7);
        let auto = simd::l2_sqr_auto(&x, &y);
        let unrolled = l2_sqr_unrolled(&x, &y);
        let reference = l2_sqr_ref(&x, &y);
        assert!(
            close(auto, reference),
            "l2 d={d}: {auto} vs ref {reference}"
        );
        assert!(
            close(auto, unrolled),
            "l2 d={d}: {auto} vs unrolled {unrolled}"
        );
        let dauto = simd::inner_product_auto(&x, &y);
        let dref = dot_ref(&x, &y);
        assert!(
            dot_close(dauto, dref, &x, &y),
            "dot d={d}: {dauto} vs ref {dref}"
        );
    }
}

/// Sub-slices starting at every offset 0..8 are never 32-byte aligned
/// in general; the kernels use unaligned loads so results must not
/// change character.
#[test]
fn unaligned_subslices_agree() {
    let x = pseudo_random(1040, 1);
    let y = pseudo_random(1040, 2);
    for off in 0..8usize {
        for d in [1usize, 7, 8, 63, 64, 127, 128, 959, 960, 1024] {
            let (xs, ys) = (&x[off..off + d], &y[off..off + d]);
            let auto = simd::l2_sqr_auto(xs, ys);
            let reference = l2_sqr_ref(xs, ys);
            assert!(
                close(auto, reference),
                "off={off} d={d}: {auto} vs {reference}"
            );
        }
    }
}

/// The batch primitive must agree with per-row auto calls bit for bit
/// (same kernel, same order), and with the reference within tolerance.
#[test]
fn batch_agrees_with_per_row_and_reference() {
    for d in [1usize, 5, 8, 64, 96, 100, 128, 960] {
        let n = 37;
        let q = pseudo_random(d, 3);
        let flat = pseudo_random(n * d, 4);
        let mut out = vec![0.0f32; n];
        simd::l2_sqr_batch_flat(&q, &flat, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let row = &flat[i * d..(i + 1) * d];
            assert_eq!(
                got.to_bits(),
                simd::l2_sqr_auto(&q, row).to_bits(),
                "d={d} row={i}"
            );
            assert!(close(got, l2_sqr_ref(&q, row)), "d={d} row={i}");
        }
    }
}

proptest! {
    /// Random lengths (1..=1024) and random values: all three l2
    /// kernels agree within relative tolerance.
    #[test]
    fn prop_l2_kernels_agree(v in proptest::collection::vec(-100.0f32..100.0, 1..1025)) {
        let y: Vec<f32> = v.iter().rev().map(|x| x * 0.75 - 0.5).collect();
        let auto = simd::l2_sqr_auto(&v, &y);
        let unrolled = l2_sqr_unrolled(&v, &y);
        let reference = l2_sqr_ref(&v, &y);
        prop_assert!(close(auto, reference), "{} vs ref {}", auto, reference);
        prop_assert!(close(unrolled, reference), "{} vs ref {}", unrolled, reference);
    }

    /// Same for the dot kernel (magnitude-scaled tolerance — dots
    /// cancel).
    #[test]
    fn prop_dot_kernels_agree(v in proptest::collection::vec(-100.0f32..100.0, 1..1025)) {
        let y: Vec<f32> = v.iter().map(|x| 1.0 - x * 0.25).collect();
        let auto = simd::inner_product_auto(&v, &y);
        let reference = dot_ref(&v, &y);
        prop_assert!(dot_close(auto, reference, &v, &y), "{} vs ref {}", auto, reference);
    }

    /// Unaligned sub-slices of a shared buffer agree with the full-slice
    /// result computed by the reference kernel.
    #[test]
    fn prop_unaligned_offsets_agree(
        v in proptest::collection::vec(-10.0f32..10.0, 16..512),
        off in 1usize..8,
    ) {
        let y: Vec<f32> = v.iter().map(|x| x + 0.5).collect();
        let d = v.len() - off;
        let auto = simd::l2_sqr_auto(&v[off..], &y[off..]);
        let reference = l2_sqr_ref(&v[off..], &y[off..]);
        prop_assert!(close(auto, reference), "off={} d={}: {} vs {}", off, d, auto, reference);
    }
}

//! `atomic-ordering`: protocol fields (`pin`/`dirty`/`tag` here) may
//! never be `Relaxed`, even when annotated; other atomics just need a
//! `// RELAXED-OK:` justification.

pub struct FrameAtomics {
    pin: AtomicU32,
    usage: AtomicU32,
}

impl FrameAtomics {
    pub fn annotated_protocol_field(&self) {
        // RELAXED-OK: (an annotation cannot excuse a protocol field —
        // the per-field check still fires on the next line)
        self.dirty.store(false, Ordering::Relaxed);
    }

    pub fn stats_ok(&self) -> u32 {
        // RELAXED-OK: usage is an eviction hint, not synchronization.
        self.usage.load(Ordering::Relaxed)
    }

    pub fn unannotated(&self) {
        self.pin.store(0, Ordering::Relaxed);
    }
}

//! `exhaustive-lockclass`: a `match` over `LockClass` must list every
//! variant — catch-all arms swallow newly added lock ranks.

use crate::lockorder::LockClass;

pub fn ok_rank(c: LockClass) -> u8 {
    match c {
        LockClass::PoolInner => 0,
        LockClass::Shard => 0,
        LockClass::Frame => 1,
        LockClass::DecoupledIndex => 2,
        LockClass::ChangeLog => 3,
        LockClass::EngineShared => 4,
    }
}

pub fn bad_rank(c: LockClass) -> u8 {
    match c {
        LockClass::PoolInner => 0,
        LockClass::Shard => 0,
        _ => 9,
    }
}

pub fn bad_binding(c: LockClass) -> u8 {
    match c {
        LockClass::Frame => 1,
        other if true => rank_of(other),
    }
}

pub fn fine_over_u8(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => 0,
    }
}

//! `guard-discipline`: no lock guard held across a buffer-pool entry
//! point or change-log replay.

pub struct Ix;

impl Ix {
    pub fn bad_with_page(&self, bm: &BufferManager) {
        let mut inner = self.inner.write();
        inner.touch();
        bm.with_page(self.rel, 0, |p| p.len());
    }

    pub fn good_drop_then_bad_drain(&self, bm: &BufferManager) {
        let g = self.state.lock();
        g.touch();
        drop(g);
        bm.flush_all(); // fine: `g` was dropped above
        let h = self.state.lock();
        self.log.drain_with(|r| h.apply(r));
    }

    pub fn sanctioned(&self) {
        let mut inner = self.inner.write();
        // GUARD-OK: DecoupledIndex -> ChangeLog is the sanctioned drain
        // descent; replay is heap-free so no pool entry happens.
        self.log.drain_with(|rec| inner.apply(rec));
    }

    pub fn scoped_guard_is_fine(&self, bm: &BufferManager) {
        {
            let g = self.state.lock();
            g.touch();
        }
        bm.with_page_mut(self.rel, 0, |p| p.len());
    }
}

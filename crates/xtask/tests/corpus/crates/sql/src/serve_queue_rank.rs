//! Corpus fixture: a `ServeQueue`-rank lock minted outside
//! `crates/serve`. The admission-queue rank sits above the whole lock
//! hierarchy and is private to the batch scheduler (`lock-hierarchy`).

use vdb_storage::lockorder::LockClass;
use vdb_storage::sync::OrderedMutex;

/// A planner-side "fast path" trying to sit above the scheduler.
pub fn mint_queue_lock() -> OrderedMutex<u8> {
    OrderedMutex::new(LockClass::ServeQueue, 0)
}

//! `#[cfg(test)]` recognition: spaced predicates, reordered `all`
//! operands, nested inner test modules — all exempt from `no-panic` —
//! while `not(test)` code stays in scope (line 24 is a finding).

pub mod outer {
    #[cfg(all(feature = "slow", test))]
    pub mod bench_helpers {
        pub fn t(x: Option<u8>) { x.unwrap(); }
    }

    pub mod inner {
        #[cfg( test )]
        mod tests {
            fn t(x: Option<u8>) { x.unwrap(); }
        }
    }
}

#[cfg(any(unix, test))]
pub fn gated(x: Option<u8>) -> u8 {
    x.unwrap_or(1)
}

#[cfg(not(test))]
pub fn live(x: Option<u8>) -> u8 { x.unwrap() }

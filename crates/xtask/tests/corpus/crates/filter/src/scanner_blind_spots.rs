//! Raw strings (with embedded quotes and hashes) and nested block
//! comments must not hide or fabricate findings; the real sites on
//! lines 15 and 24 must still be caught.

/* outer /* nested */ comment mentioning unsafe and .unwrap() */
pub const RAW: &str = r#"unsafe { "quoted" } .unwrap()"#;
pub const RAW2: &[u8] = br##"panic!("#embedded"#)"##;

pub fn clean(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

pub fn dirty() {
    // A real unsafe block outside the whitelist: a finding.
    unsafe { std::hint::unreachable_unchecked() }
}

#[cfg( test )]
mod tests {
    pub fn in_tests(x: Option<u8>) { x.unwrap(); }
}

pub fn hot(x: Option<u8>) -> u8 {
    x.unwrap()
}

//! The repo rules `cargo xtask lint` enforces.
//!
//! | Rule | Scope | Requirement |
//! |---|---|---|
//! | `unsafe-confinement` | every `.rs` file | `unsafe` only in the whitelisted kernel/codec files |
//! | `safety-comment` | whitelisted files | every `unsafe` site carries a `// SAFETY:` comment |
//! | `no-panic` | hot-path crate sources | no `unwrap`/`expect`/`panic!`-family outside tests, unless annotated `// PANIC-OK:` |
//! | `lock-discipline` | `generalized`, `decoupled`, `sql` | no direct `parking_lot` use — shared state goes through `vdb_storage::sync` / the `BufferManager` API |
//! | `lock-hierarchy` | everything outside `crates/storage` | no storage-rank `LockClass` (`PoolInner`/`Shard`/`Frame`) construction — engine locks use `OrderedMutex::engine()` / `OrderedRwLock::engine()`; the decoupled ranks (`DecoupledIndex`/`ChangeLog`) additionally stay inside `crates/decoupled` |
//!
//! Annotations are comments, deliberately: a `// SAFETY:` or
//! `// PANIC-OK:` line must say *why* the invariant holds, which is the
//! part a reviewer can check. A bare marker with no reason is still a
//! finding for humans even though the tool accepts it.

use crate::scan::{has_token, scan, Scanned};
use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (workspace-relative, `/`-separated).
pub(crate) const UNSAFE_WHITELIST: &[&str] = &[
    "crates/vecmath/src/simd.rs",
    "crates/gemm/src/simd.rs",
    "crates/storage/src/heap.rs",
];

/// Crates whose non-test source must be panic-free (or annotated).
pub(crate) const NO_PANIC_CRATES: &[&str] = &[
    "storage",
    "generalized",
    "specialized",
    "decoupled",
    "filter",
    "sql",
];

/// Crates forbidden from acquiring `parking_lot` locks directly.
pub(crate) const LOCK_DISCIPLINE_CRATES: &[&str] = &["generalized", "decoupled", "sql"];

/// Lock classes reserved for the buffer pool's own hierarchy. Code
/// outside `crates/storage` must not mint locks at these ranks: a
/// pool-rank lock owned by an engine would let engine code interleave
/// with the shard/frame protocol the tracker assumes only the
/// `BufferManager` drives.
pub(crate) const STORAGE_LOCK_CLASSES: &[&str] = &[
    "LockClass::PoolInner",
    "LockClass::Shard",
    "LockClass::Frame",
];

/// Lock classes owned by the decoupled engine. They rank between the
/// pool locks and `EngineShared`, so code minting them elsewhere could
/// wedge itself between the index and its change log; everything
/// outside `crates/decoupled` (and `crates/storage`, which defines the
/// ranks) goes through the `DecoupledIndex` API instead.
pub(crate) const DECOUPLED_LOCK_CLASSES: &[&str] =
    &["LockClass::DecoupledIndex", "LockClass::ChangeLog"];

/// Panicking constructs the `no-panic` rule rejects.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unreachable!(",
];

/// How many lines above a finding an annotation comment may sit.
const ANNOTATION_WINDOW: usize = 4;

/// A single rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Violation {
    /// Workspace-relative path.
    pub(crate) path: PathBuf,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Rule identifier.
    pub(crate) rule: &'static str,
    /// Human-readable description.
    pub(crate) message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// An in-memory source file handed to the rules (workspace-relative
/// path + content), so tests can lint synthetic trees.
pub(crate) struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub(crate) rel_path: String,
    /// File content.
    pub(crate) content: String,
}

/// Which crate (directory under `crates/`) a path belongs to, if any.
fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether the path is non-test *library/binary* source of its crate
/// (under `src/`, as opposed to `tests/`, `benches/`, `examples/`).
fn is_crate_src(rel_path: &str) -> bool {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    let _crate = parts.next();
    parts.next() == Some("src")
}

/// Run every rule over `files`, returning all findings sorted by path
/// and line.
#[cfg(test)]
pub(crate) fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    run_selected(files, &[])
}

/// Run the rules whose names appear in `only` (all rules when empty).
pub(crate) fn run_selected(files: &[SourceFile], only: &[String]) -> Vec<Violation> {
    let enabled = |name: &str| only.is_empty() || only.iter().any(|o| o == name);
    let mut out = Vec::new();
    for file in files {
        if file.rel_path.ends_with(".rs") {
            let scanned = scan(&file.content);
            if enabled("unsafe-confinement") {
                unsafe_confinement(file, &scanned, &mut out);
            }
            if enabled("safety-comment") {
                safety_comment(file, &scanned, &mut out);
            }
            if enabled("no-panic") {
                no_panic(file, &scanned, &mut out);
            }
            if enabled("lock-discipline") {
                lock_discipline(file, &scanned, &mut out);
            }
            if enabled("lock-hierarchy") {
                lock_hierarchy(file, &scanned, &mut out);
            }
        } else if file.rel_path.ends_with("Cargo.toml") && enabled("lock-discipline") {
            lock_discipline_manifest(file, &mut out);
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    out
}

/// `unsafe` anywhere outside the whitelist is a finding.
fn unsafe_confinement(file: &SourceFile, scanned: &Scanned, out: &mut Vec<Violation>) {
    if UNSAFE_WHITELIST.contains(&file.rel_path.as_str()) {
        return;
    }
    for (idx, line) in scanned.lines.iter().enumerate() {
        if has_token(&line.code, "unsafe") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "unsafe-confinement",
                message: format!(
                    "`unsafe` outside the whitelist ({}); move the code into a \
                     whitelisted kernel module or find a safe formulation",
                    UNSAFE_WHITELIST.join(", ")
                ),
            });
        }
    }
}

/// Every `unsafe` site in a whitelisted file needs `// SAFETY:` nearby.
fn safety_comment(file: &SourceFile, scanned: &Scanned, out: &mut Vec<Violation>) {
    if !UNSAFE_WHITELIST.contains(&file.rel_path.as_str()) {
        return;
    }
    for (idx, line) in scanned.lines.iter().enumerate() {
        if has_token(&line.code, "unsafe") && !annotated(scanned, idx, "SAFETY:") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "safety-comment",
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within {ANNOTATION_WINDOW} \
                     lines; state the invariant that makes this sound"
                ),
            });
        }
    }
}

/// Panicking constructs in hot-path crate sources, outside tests,
/// without a `// PANIC-OK:` justification.
fn no_panic(file: &SourceFile, scanned: &Scanned, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !NO_PANIC_CRATES.contains(&krate) || !is_crate_src(&file.rel_path) {
        return;
    }
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if line.code.contains(pat) && !annotated(scanned, idx, "PANIC-OK:") {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line: idx + 1,
                    rule: "no-panic",
                    message: format!(
                        "`{pat}` in non-test hot-path code; return an error, or \
                         justify the invariant with a `// PANIC-OK:` comment"
                    ),
                });
            }
        }
    }
}

/// Direct `parking_lot` usage in lock-disciplined crates.
fn lock_discipline(file: &SourceFile, scanned: &Scanned, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !LOCK_DISCIPLINE_CRATES.contains(&krate) {
        return;
    }
    for (idx, line) in scanned.lines.iter().enumerate() {
        if has_token(&line.code, "parking_lot") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "lock-discipline",
                message: "direct `parking_lot` lock in an engine crate bypasses the \
                          buffer-pool lock-order tracker; use `vdb_storage::sync` \
                          (OrderedMutex/OrderedRwLock) or the BufferManager API"
                    .into(),
            });
        }
    }
}

/// Storage-rank `LockClass` values referenced outside `crates/storage`
/// (sources, tests, and benches alike — there is no legitimate reason
/// for non-storage code to sit at pool rank).
fn lock_hierarchy(file: &SourceFile, scanned: &Scanned, out: &mut Vec<Violation>) {
    let krate = crate_of(&file.rel_path);
    if krate == Some("storage") {
        return;
    }
    for (idx, line) in scanned.lines.iter().enumerate() {
        for class in STORAGE_LOCK_CLASSES {
            if line.code.contains(class) {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line: idx + 1,
                    rule: "lock-hierarchy",
                    message: format!(
                        "`{class}` outside `crates/storage`; pool-rank locks belong to \
                         the BufferManager — engine shared state takes \
                         `OrderedMutex::engine()` / `OrderedRwLock::engine()` \
                         (rank EngineShared)"
                    ),
                });
            }
        }
        if krate == Some("decoupled") {
            continue;
        }
        for class in DECOUPLED_LOCK_CLASSES {
            if line.code.contains(class) {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line: idx + 1,
                    rule: "lock-hierarchy",
                    message: format!(
                        "`{class}` outside `crates/decoupled`; the decoupled engine's \
                         index/change-log ranks are private to it — go through the \
                         `DecoupledIndex` API, or use an `engine()` lock"
                    ),
                });
            }
        }
    }
}

/// A `parking_lot` dependency declared by a lock-disciplined crate.
fn lock_discipline_manifest(file: &SourceFile, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !LOCK_DISCIPLINE_CRATES.contains(&krate) {
        return;
    }
    for (idx, raw) in file.content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default();
        if line.trim_start().starts_with("parking_lot") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "lock-discipline",
                message: "crate declares a `parking_lot` dependency; engine crates \
                          must take locks through `vdb_storage::sync`"
                    .into(),
            });
        }
    }
}

/// Whether line `idx` (or a comment within the window above it) carries
/// the given annotation marker.
fn annotated(scanned: &Scanned, idx: usize, marker: &str) -> bool {
    let lo = idx.saturating_sub(ANNOTATION_WINDOW);
    scanned.lines[lo..=idx]
        .iter()
        .any(|l| l.comment.contains(marker))
}

/// Collect the workspace files the rules run over: every `.rs` under
/// `crates/`, `tests/`, `examples/`, plus each crate's `Cargo.toml`.
pub(crate) fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<std::io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                rel_path: rel,
                content: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, content: &str) -> SourceFile {
        SourceFile {
            rel_path: path.into(),
            content: content.into(),
        }
    }

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn stray_unsafe_is_flagged_with_location() {
        let v = run_all(&[file(
            "crates/filter/src/bitmap.rs",
            "fn f() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n",
        )]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-confinement");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn whitelisted_unsafe_needs_safety_comment() {
        let bad = run_all(&[file(
            "crates/gemm/src/simd.rs",
            "pub fn f() {\n    unsafe { core::arch::x86_64::_mm256_setzero_ps() };\n}\n",
        )]);
        assert_eq!(rules_of(&bad), vec!["safety-comment"]);

        let good = run_all(&[file(
            "crates/gemm/src/simd.rs",
            "pub fn f() {\n    // SAFETY: caller verified AVX2 support.\n    unsafe { core::arch::x86_64::_mm256_setzero_ps() };\n}\n",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged_but_tests_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        let v = run_all(&[file("crates/sql/src/executor.rs", src)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "no-panic");
    }

    #[test]
    fn panic_ok_annotation_is_accepted() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // PANIC-OK: x was checked non-empty by the caller's loop bound.\n    x.unwrap()\n}\n";
        assert!(run_all(&[file("crates/storage/src/page.rs", src)]).is_empty());
    }

    #[test]
    fn expect_and_panic_family_flagged() {
        let src = "fn f(x: Option<u8>) {\n    x.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n}\n";
        let v = run_all(&[file("crates/generalized/src/hnsw.rs", src)]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn cold_crates_may_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(run_all(&[file("crates/datagen/src/spec.rs", src)]).is_empty());
        // …and so may hot crates' integration tests and benches.
        assert!(run_all(&[file("crates/sql/tests/t.rs", src)]).is_empty());
    }

    #[test]
    fn parking_lot_banned_in_engine_crates_only() {
        let src = "use parking_lot::Mutex;\n";
        let v = run_all(&[file("crates/generalized/src/ivf_flat.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-discipline"]);
        assert!(run_all(&[file("crates/storage/src/buffer.rs", src)]).is_empty());
    }

    #[test]
    fn parking_lot_dependency_declaration_flagged() {
        let v = run_all(&[file(
            "crates/sql/Cargo.toml",
            "[dependencies]\nparking_lot = { workspace = true }\n",
        )]);
        assert_eq!(rules_of(&v), vec!["lock-discipline"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn storage_rank_lock_class_banned_outside_storage() {
        let src = "use vdb_storage::sync::OrderedRwLock;\nuse vdb_storage::LockClass;\nfn f() { let _l = OrderedRwLock::new(LockClass::Shard, 0u32); }\n";
        let v = run_all(&[file("crates/generalized/src/ivf_flat.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        assert_eq!(v[0].line, 3);
        // Workspace-level integration tests are in scope too.
        let vt = run_all(&[file(
            "tests/pool_mode_equivalence.rs",
            "fn t() { acquire(LockClass::PoolInner); }\n",
        )]);
        assert_eq!(rules_of(&vt), vec!["lock-hierarchy"]);
        // The storage crate itself mints pool-rank locks freely.
        assert!(run_all(&[file(
            "crates/storage/src/buffer.rs",
            "fn f() { let _l = OrderedRwLock::new(LockClass::Frame, ());\n}\n",
        )])
        .is_empty());
    }

    #[test]
    fn decoupled_rank_lock_classes_banned_outside_their_crate() {
        let src = "fn f() { let _l = OrderedRwLock::new(LockClass::DecoupledIndex, ()); }\n";
        let v = run_all(&[file("crates/sql/src/database.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        let v = run_all(&[file(
            "tests/decoupled_stress.rs",
            "fn f() { acquire(LockClass::ChangeLog); }\n",
        )]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        // The decoupled crate itself mints its ranks freely, and the
        // storage crate defines them.
        assert!(run_all(&[file("crates/decoupled/src/changelog.rs", src)]).is_empty());
        assert!(run_all(&[file("crates/storage/src/lockorder.rs", src)]).is_empty());
    }

    #[test]
    fn decoupled_crate_is_panic_and_lock_disciplined() {
        let v = run_all(&[file(
            "crates/decoupled/src/index.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\nuse parking_lot::Mutex;\n",
        )]);
        assert_eq!(rules_of(&v), vec!["no-panic", "lock-discipline"]);
    }

    #[test]
    fn engine_rank_lock_class_is_fine_everywhere() {
        let src = "fn f() { let _m = vdb_storage::sync::OrderedMutex::engine(0u32); }\n";
        assert!(run_all(&[file("crates/sql/src/database.rs", src)]).is_empty());
    }

    #[test]
    fn lock_class_in_string_or_comment_is_not_a_finding() {
        let src =
            "// mentions LockClass::Shard in prose\nconst MSG: &str = \"LockClass::Frame\";\n";
        assert!(run_all(&[file("crates/bench/src/concurrent.rs", src)]).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_not_a_finding() {
        let src = "// this mentions unsafe code\nconst MSG: &str = \"unsafe\";\n";
        assert!(run_all(&[file("crates/filter/src/expr.rs", src)]).is_empty());
    }

    #[test]
    fn selected_rules_filter() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); unsafe {} }\n";
        let f = [file("crates/sql/src/planner.rs", src)];
        let only_panic = run_selected(&f, &["no-panic".to_string()]);
        assert_eq!(rules_of(&only_panic), vec!["no-panic"]);
    }
}

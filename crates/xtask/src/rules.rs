//! The repo rules `cargo xtask lint` enforces.
//!
//! | Rule | Scope | Requirement |
//! |---|---|---|
//! | `unsafe-confinement` | every `.rs` file | `unsafe` only in the whitelisted kernel/codec files |
//! | `safety-comment` | whitelisted files | every `unsafe` site carries a `// SAFETY:` comment |
//! | `no-panic` | hot-path crate sources | no `unwrap`/`expect`/`panic!`-family outside tests, unless annotated `// PANIC-OK:` |
//! | `lock-discipline` | `generalized`, `decoupled`, `serve`, `sql` | no direct `parking_lot` use — shared state goes through `vdb_storage::sync` / the `BufferManager` API |
//! | `lock-hierarchy` | everything outside `crates/storage` | no storage-rank `LockClass` (`PoolInner`/`Shard`/`Frame`) construction — engine locks use `OrderedMutex::engine()` / `OrderedRwLock::engine()`; the decoupled ranks (`DecoupledIndex`/`ChangeLog`) additionally stay inside `crates/decoupled`, and the admission-queue rank (`ServeQueue`) inside `crates/serve` |
//! | `atomic-ordering` | crate sources outside `crates/profile` | every `Ordering::Relaxed` carries `// RELAXED-OK: <why>`; the designated synchronization fields (`pin`/`dirty`/`tag` in `buffer.rs`, `head`/`applied` in `changelog.rs`) must never use `Relaxed` at all |
//! | `guard-discipline` | `storage`, `generalized`, `decoupled`, `sql` sources | no lock guard held across a buffer-manager entry point or change-log replay (`with_page`, `with_page_mut`, `new_page`, `flush_all`, `drain_with`), unless annotated `// GUARD-OK:` |
//! | `exhaustive-lockclass` | every `.rs` file | a `match` over `LockClass` lists every variant — no `_` or binding catch-all arm |
//!
//! Annotations are comments, deliberately: a `// SAFETY:`,
//! `// PANIC-OK:`, `// RELAXED-OK:` or `// GUARD-OK:` line must say
//! *why* the invariant holds, which is the part a reviewer can check. A
//! bare marker with no reason is still a finding for humans even though
//! the tool accepts it.
//!
//! The first five rules consume the per-line code/comment channels; the
//! last three walk the token tree (see `ast.rs`), which is what lets
//! them see paths, call shapes and match arms instead of substrings.

use crate::ast::{analyze, group_at, has_token, path_at, Analysis, Group, Node};
use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (workspace-relative, `/`-separated).
pub(crate) const UNSAFE_WHITELIST: &[&str] = &[
    "crates/vecmath/src/simd.rs",
    "crates/gemm/src/simd.rs",
    "crates/storage/src/heap.rs",
];

/// Crates whose non-test source must be panic-free (or annotated).
pub(crate) const NO_PANIC_CRATES: &[&str] = &[
    "storage",
    "generalized",
    "specialized",
    "decoupled",
    "filter",
    "serve",
    "sql",
];

/// Crates forbidden from acquiring `parking_lot` locks directly.
pub(crate) const LOCK_DISCIPLINE_CRATES: &[&str] = &["generalized", "decoupled", "serve", "sql"];

/// Lock classes reserved for the buffer pool's own hierarchy. Code
/// outside `crates/storage` must not mint locks at these ranks: a
/// pool-rank lock owned by an engine would let engine code interleave
/// with the shard/frame protocol the tracker assumes only the
/// `BufferManager` drives.
pub(crate) const STORAGE_LOCK_CLASSES: &[&str] = &[
    "LockClass::PoolInner",
    "LockClass::Shard",
    "LockClass::Frame",
];

/// Lock classes owned by the decoupled engine. They rank between the
/// pool locks and `EngineShared`, so code minting them elsewhere could
/// wedge itself between the index and its change log; everything
/// outside `crates/decoupled` (and `crates/storage`, which defines the
/// ranks) goes through the `DecoupledIndex` API instead.
pub(crate) const DECOUPLED_LOCK_CLASSES: &[&str] =
    &["LockClass::DecoupledIndex", "LockClass::ChangeLog"];

/// Lock class owned by the batched-serving admission queue. It ranks
/// above the whole stack (leaders call into engines, hence the buffer
/// pool, while holding it), so a `ServeQueue` lock minted outside
/// `crates/serve` would let arbitrary code sit above the scheduler's
/// queue in the hierarchy; everything else submits through the
/// `BatchScheduler` API.
pub(crate) const SERVE_LOCK_CLASSES: &[&str] = &["LockClass::ServeQueue"];

/// Panicking constructs the `no-panic` rule rejects.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unreachable!(",
];

/// Crates exempt from the `atomic-ordering` annotation requirement:
/// metrics-only code whose atomics are never used for synchronization.
pub(crate) const ATOMIC_RELAXED_WHITELIST: &[&str] = &["profile"];

/// Per-file atomic fields that *are* the synchronization protocol:
/// frame tags, pin counts and dirty bits in the buffer pool; the
/// append/replay cursors of the change log. Any `Relaxed` operation on
/// them is a finding with no annotation escape — the pairing argument
/// is structural (see the loom models), not per-site.
pub(crate) const ATOMIC_SYNC_FIELDS: &[(&str, &[&str])] = &[
    ("crates/storage/src/buffer.rs", &["pin", "dirty", "tag"]),
    ("crates/decoupled/src/changelog.rs", &["head", "applied"]),
];

/// Atomic operation method names the per-field check inspects.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Crates whose sources the `guard-discipline` rule covers.
pub(crate) const GUARD_DISCIPLINE_CRATES: &[&str] = &["storage", "generalized", "decoupled", "sql"];

/// Methods whose empty-argument call at the end of a `let` initializer
/// acquires a lock guard.
const GUARD_METHODS: &[&str] = &["lock", "read", "write", "try_read", "try_write"];

/// Callees a live guard must not be held across: buffer-manager entry
/// points and the change-log replay. (The runtime lock-order tracker
/// catches deeper transitive descents; this catches the latent direct
/// ones at lint time.)
const GUARD_BARRED_CALLEES: &[&str] = &[
    "with_page",
    "with_page_mut",
    "new_page",
    "flush_all",
    "drain_with",
];

/// How many lines above a finding an annotation comment may sit.
const ANNOTATION_WINDOW: usize = 4;

/// A single rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Violation {
    /// Workspace-relative path.
    pub(crate) path: PathBuf,
    /// 1-based line number.
    pub(crate) line: usize,
    /// Rule identifier.
    pub(crate) rule: &'static str,
    /// Human-readable description.
    pub(crate) message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Serialize findings as a JSON array of
/// `{"path","line","rule","message"}` objects (the `--json` output CI
/// turns into GitHub annotations).
pub(crate) fn to_json(violations: &[Violation]) -> String {
    let mut s = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n  {\"path\":");
        s.push_str(&json_str(&v.path.display().to_string()));
        s.push_str(",\"line\":");
        s.push_str(&v.line.to_string());
        s.push_str(",\"rule\":");
        s.push_str(&json_str(v.rule));
        s.push_str(",\"message\":");
        s.push_str(&json_str(&v.message));
        s.push('}');
    }
    if !violations.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An in-memory source file handed to the rules (workspace-relative
/// path + content), so tests can lint synthetic trees.
pub(crate) struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub(crate) rel_path: String,
    /// File content.
    pub(crate) content: String,
}

/// Which crate (directory under `crates/`) a path belongs to, if any.
fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether the path is non-test *library/binary* source of its crate
/// (under `src/`, as opposed to `tests/`, `benches/`, `examples/`).
fn is_crate_src(rel_path: &str) -> bool {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    let mut parts = rest.split('/');
    let _crate = parts.next();
    parts.next() == Some("src")
}

/// Run every rule over `files`, returning all findings sorted by path
/// and line.
#[cfg(test)]
pub(crate) fn run_all(files: &[SourceFile]) -> Vec<Violation> {
    run_selected(files, &[])
}

/// Run the rules whose names appear in `only` (all rules when empty).
pub(crate) fn run_selected(files: &[SourceFile], only: &[String]) -> Vec<Violation> {
    let enabled = |name: &str| only.is_empty() || only.iter().any(|o| o == name);
    let mut out = Vec::new();
    for file in files {
        if file.rel_path.ends_with(".rs") {
            let analysis = analyze(&file.content);
            if enabled("unsafe-confinement") {
                unsafe_confinement(file, &analysis, &mut out);
            }
            if enabled("safety-comment") {
                safety_comment(file, &analysis, &mut out);
            }
            if enabled("no-panic") {
                no_panic(file, &analysis, &mut out);
            }
            if enabled("lock-discipline") {
                lock_discipline(file, &analysis, &mut out);
            }
            if enabled("lock-hierarchy") {
                lock_hierarchy(file, &analysis, &mut out);
            }
            if enabled("atomic-ordering") {
                atomic_ordering(file, &analysis, &mut out);
            }
            if enabled("guard-discipline") {
                guard_discipline(file, &analysis, &mut out);
            }
            if enabled("exhaustive-lockclass") {
                exhaustive_lockclass(file, &analysis, &mut out);
            }
        } else if file.rel_path.ends_with("Cargo.toml") && enabled("lock-discipline") {
            lock_discipline_manifest(file, &mut out);
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    out
}

/// `unsafe` anywhere outside the whitelist is a finding.
fn unsafe_confinement(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    if UNSAFE_WHITELIST.contains(&file.rel_path.as_str()) {
        return;
    }
    for (idx, line) in analysis.lines.iter().enumerate() {
        if has_token(&line.code, "unsafe") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "unsafe-confinement",
                message: format!(
                    "`unsafe` outside the whitelist ({}); move the code into a \
                     whitelisted kernel module or find a safe formulation",
                    UNSAFE_WHITELIST.join(", ")
                ),
            });
        }
    }
}

/// Every `unsafe` site in a whitelisted file needs `// SAFETY:` nearby.
fn safety_comment(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    if !UNSAFE_WHITELIST.contains(&file.rel_path.as_str()) {
        return;
    }
    for (idx, line) in analysis.lines.iter().enumerate() {
        if has_token(&line.code, "unsafe") && !annotated(analysis, idx, "SAFETY:") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "safety-comment",
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within {ANNOTATION_WINDOW} \
                     lines; state the invariant that makes this sound"
                ),
            });
        }
    }
}

/// Panicking constructs in hot-path crate sources, outside tests,
/// without a `// PANIC-OK:` justification.
fn no_panic(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !NO_PANIC_CRATES.contains(&krate) || !is_crate_src(&file.rel_path) {
        return;
    }
    for (idx, line) in analysis.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if line.code.contains(pat) && !annotated(analysis, idx, "PANIC-OK:") {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line: idx + 1,
                    rule: "no-panic",
                    message: format!(
                        "`{pat}` in non-test hot-path code; return an error, or \
                         justify the invariant with a `// PANIC-OK:` comment"
                    ),
                });
            }
        }
    }
}

/// Direct `parking_lot` usage in lock-disciplined crates.
fn lock_discipline(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !LOCK_DISCIPLINE_CRATES.contains(&krate) {
        return;
    }
    for (idx, line) in analysis.lines.iter().enumerate() {
        if has_token(&line.code, "parking_lot") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "lock-discipline",
                message: "direct `parking_lot` lock in an engine crate bypasses the \
                          buffer-pool lock-order tracker; use `vdb_storage::sync` \
                          (OrderedMutex/OrderedRwLock) or the BufferManager API"
                    .into(),
            });
        }
    }
}

/// Storage-rank `LockClass` values referenced outside `crates/storage`
/// (sources, tests, and benches alike — there is no legitimate reason
/// for non-storage code to sit at pool rank).
fn lock_hierarchy(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let krate = crate_of(&file.rel_path);
    if krate == Some("storage") {
        return;
    }
    for (idx, line) in analysis.lines.iter().enumerate() {
        for class in STORAGE_LOCK_CLASSES {
            if line.code.contains(class) {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line: idx + 1,
                    rule: "lock-hierarchy",
                    message: format!(
                        "`{class}` outside `crates/storage`; pool-rank locks belong to \
                         the BufferManager — engine shared state takes \
                         `OrderedMutex::engine()` / `OrderedRwLock::engine()` \
                         (rank EngineShared)"
                    ),
                });
            }
        }
        if krate != Some("decoupled") {
            for class in DECOUPLED_LOCK_CLASSES {
                if line.code.contains(class) {
                    out.push(Violation {
                        path: PathBuf::from(&file.rel_path),
                        line: idx + 1,
                        rule: "lock-hierarchy",
                        message: format!(
                            "`{class}` outside `crates/decoupled`; the decoupled engine's \
                             index/change-log ranks are private to it — go through the \
                             `DecoupledIndex` API, or use an `engine()` lock"
                        ),
                    });
                }
            }
        }
        if krate != Some("serve") {
            for class in SERVE_LOCK_CLASSES {
                if line.code.contains(class) {
                    out.push(Violation {
                        path: PathBuf::from(&file.rel_path),
                        line: idx + 1,
                        rule: "lock-hierarchy",
                        message: format!(
                            "`{class}` outside `crates/serve`; the admission-queue rank \
                             is private to the batch scheduler — submit through \
                             `BatchScheduler`, or use an `engine()` lock"
                        ),
                    });
                }
            }
        }
    }
}

/// A `parking_lot` dependency declared by a lock-disciplined crate.
fn lock_discipline_manifest(file: &SourceFile, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !LOCK_DISCIPLINE_CRATES.contains(&krate) {
        return;
    }
    for (idx, raw) in file.content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default();
        if line.trim_start().starts_with("parking_lot") {
            out.push(Violation {
                path: PathBuf::from(&file.rel_path),
                line: idx + 1,
                rule: "lock-discipline",
                message: "crate declares a `parking_lot` dependency; engine crates \
                          must take locks through `vdb_storage::sync`"
                    .into(),
            });
        }
    }
}

/// `Ordering::Relaxed` sites need a `// RELAXED-OK:` justification, and
/// the designated synchronization fields must not use `Relaxed` at all.
fn atomic_ordering(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if ATOMIC_RELAXED_WHITELIST.contains(&krate) || !is_crate_src(&file.rel_path) {
        return;
    }
    relaxed_scan(&analysis.tree, file, analysis, out);
    if let Some((_, fields)) = ATOMIC_SYNC_FIELDS
        .iter()
        .find(|(path, _)| *path == file.rel_path)
    {
        sync_field_scan(&analysis.tree, fields, file, analysis, out);
    }
}

fn relaxed_scan(nodes: &[Node], file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    for (i, node) in nodes.iter().enumerate() {
        if path_at(nodes, i, "Ordering", "Relaxed") {
            let line = nodes[i + 3].line();
            let idx = line - 1;
            if !analysis.lines[idx].in_test && !annotated(analysis, idx, "RELAXED-OK:") {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line,
                    rule: "atomic-ordering",
                    message: "`Ordering::Relaxed` without a `// RELAXED-OK:` comment \
                              within 4 lines; say why unordered access is sound (pure \
                              stats counter, hint only, …) or use Acquire/Release"
                        .into(),
                });
            }
        }
        if let Node::Group(g) = node {
            relaxed_scan(&g.children, file, analysis, out);
        }
    }
}

fn sync_field_scan(
    nodes: &[Node],
    fields: &[&str],
    file: &SourceFile,
    analysis: &Analysis,
    out: &mut Vec<Violation>,
) {
    for (i, node) in nodes.iter().enumerate() {
        // `.field.op(… Relaxed …)` — a relaxed operation on a
        // synchronization atomic, regardless of annotation.
        if node.is_punct('.') {
            if let (Some(field), true, Some(op), Some(args)) = (
                nodes.get(i + 1).and_then(Node::ident),
                nodes.get(i + 2).is_some_and(|n| n.is_punct('.')),
                nodes.get(i + 3).and_then(Node::ident),
                group_at(nodes, i + 4, '('),
            ) {
                if fields.contains(&field)
                    && ATOMIC_OPS.contains(&op)
                    && span_mentions_ident(&args.children, "Relaxed")
                {
                    let line = nodes[i + 3].line();
                    if !analysis.lines[line - 1].in_test {
                        out.push(Violation {
                            path: PathBuf::from(&file.rel_path),
                            line,
                            rule: "atomic-ordering",
                            message: format!(
                                "`{field}.{op}` uses `Relaxed`, but `{field}` is a \
                                 synchronization atomic (frame-tag/pin/cursor \
                                 protocol); its loads and stores must pair \
                                 Acquire/Release — no annotation escape, see the \
                                 loom models in DESIGN.md §14"
                            ),
                        });
                    }
                }
            }
        }
        if let Node::Group(g) = node {
            sync_field_scan(&g.children, fields, file, analysis, out);
        }
    }
}

/// Whether the span (recursively) contains the identifier `name`.
fn span_mentions_ident(nodes: &[Node], name: &str) -> bool {
    nodes.iter().any(|n| match n {
        Node::Tok(_) => n.is_ident(name),
        Node::Group(g) => span_mentions_ident(&g.children, name),
    })
}

/// No lock guard held across a buffer-manager / change-log-replay call.
fn guard_discipline(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let Some(krate) = crate_of(&file.rel_path) else {
        return;
    };
    if !GUARD_DISCIPLINE_CRATES.contains(&krate) || !is_crate_src(&file.rel_path) {
        return;
    }
    let mut scopes: Vec<Vec<(String, usize)>> = Vec::new();
    guard_block(&analysis.tree, &mut scopes, file, analysis, out);
}

/// Walk one `{…}` scope: `let` bindings whose initializer ends in
/// `.lock()` / `.read()` / `.write()` / `.try_*()` register a live
/// guard; `drop(name)` releases it; inner braces open nested scopes.
fn guard_block(
    nodes: &[Node],
    scopes: &mut Vec<Vec<(String, usize)>>,
    file: &SourceFile,
    analysis: &Analysis,
    out: &mut Vec<Violation>,
) {
    scopes.push(Vec::new());
    let mut i = 0;
    while i < nodes.len() {
        let is_stmt_let = nodes[i].is_ident("let")
            && !(i > 0 && (nodes[i - 1].is_ident("if") || nodes[i - 1].is_ident("while")));
        if is_stmt_let {
            let end = stmt_end(nodes, i);
            let stmt = &nodes[i..end];
            // Scan the initializer first: calls in it run before the
            // binding exists.
            guard_span(stmt, scopes, file, analysis, out);
            if let Some(name) = guard_binding(stmt) {
                let line = nodes[i].line();
                if let Some(scope) = scopes.last_mut() {
                    scope.push((name, line));
                }
            }
            i = end + 1;
            continue;
        }
        guard_node(nodes, i, scopes, file, analysis, out);
        i += 1;
    }
    scopes.pop();
}

/// Index of the `;` terminating the statement starting at `from` (at
/// this nesting level), or `nodes.len()`.
fn stmt_end(nodes: &[Node], from: usize) -> usize {
    let mut i = from;
    while i < nodes.len() {
        if nodes[i].is_punct(';') {
            return i;
        }
        i += 1;
    }
    nodes.len()
}

/// The guard name bound by a `let` statement whose initializer *ends*
/// in a guard-acquiring call (`let g = x.lock();`,
/// `let Some(g) = x.try_read() else { … };`). Chains that merely pass
/// through a guard (`x.read().len()`) do not bind one.
fn guard_binding(stmt: &[Node]) -> Option<String> {
    if !stmt.first()?.is_ident("let") {
        return None;
    }
    let mut j = 1;
    if stmt.get(j)?.is_ident("mut") {
        j += 1;
    }
    let mut name = stmt.get(j)?.ident()?.to_string();
    if name == "Some" || name == "Ok" {
        let inner = group_at(stmt, j + 1, '(')?;
        let mut k = 0;
        if inner.children.get(k).is_some_and(|n| n.is_ident("mut")) {
            k += 1;
        }
        name = inner.children.get(k)?.ident()?.to_string();
    }
    if name == "_" {
        return None;
    }
    // `let v = *m.lock();` copies out of a temporary guard that drops
    // at the end of the statement — nothing is held afterwards.
    let eq = stmt.iter().position(|n| n.is_punct('='))?;
    if stmt.get(eq + 1).is_some_and(|n| n.is_punct('*')) {
        return None;
    }
    // Trim a `… else { … }` tail.
    let mut end = stmt.len();
    if end >= 2
        && stmt[end - 1].group().is_some_and(|g| g.delim == '{')
        && stmt[end - 2].is_ident("else")
    {
        end -= 2;
    }
    if end < 3 {
        return None;
    }
    let args = stmt[end - 1].group()?;
    if args.delim != '(' || !args.children.is_empty() {
        return None;
    }
    let method = stmt[end - 2].ident()?;
    if !GUARD_METHODS.contains(&method) || !stmt[end - 3].is_punct('.') {
        return None;
    }
    Some(name)
}

/// Scan a statement span / paren group at the current scope depth.
fn guard_span(
    nodes: &[Node],
    scopes: &mut Vec<Vec<(String, usize)>>,
    file: &SourceFile,
    analysis: &Analysis,
    out: &mut Vec<Violation>,
) {
    for i in 0..nodes.len() {
        guard_node(nodes, i, scopes, file, analysis, out);
    }
}

fn guard_node(
    nodes: &[Node],
    i: usize,
    scopes: &mut Vec<Vec<(String, usize)>>,
    file: &SourceFile,
    analysis: &Analysis,
    out: &mut Vec<Violation>,
) {
    match &nodes[i] {
        Node::Tok(t) => {
            let Some(name) = nodes[i].ident() else {
                return;
            };
            if name == "drop" {
                if let Some(arg) = group_at(nodes, i + 1, '(') {
                    if arg.children.len() == 1 {
                        if let Some(dropped) = arg.children[0].ident() {
                            for scope in scopes.iter_mut() {
                                if let Some(pos) = scope.iter().rposition(|(n, _)| n == dropped) {
                                    scope.remove(pos);
                                }
                            }
                        }
                    }
                }
            } else if GUARD_BARRED_CALLEES.contains(&name)
                && group_at(nodes, i + 1, '(').is_some()
                && !(i > 0 && nodes[i - 1].is_ident("fn"))
            {
                let held: Vec<String> = scopes
                    .iter()
                    .flatten()
                    .map(|(n, l)| format!("`{n}` (line {l})"))
                    .collect();
                if !held.is_empty() {
                    let idx = t.line - 1;
                    if !analysis.lines[idx].in_test && !annotated(analysis, idx, "GUARD-OK:") {
                        out.push(Violation {
                            path: PathBuf::from(&file.rel_path),
                            line: t.line,
                            rule: "guard-discipline",
                            message: format!(
                                "call into `{name}` while holding lock guard(s) {}; \
                                 drop the guard first, or justify the descent with a \
                                 `// GUARD-OK:` comment",
                                held.join(", ")
                            ),
                        });
                    }
                }
            }
        }
        Node::Group(g) => {
            if g.delim == '{' {
                guard_block(&g.children, scopes, file, analysis, out);
            } else {
                guard_span(&g.children, scopes, file, analysis, out);
            }
        }
    }
}

/// A `match` over `LockClass` must list every variant: a `_` or a
/// lone lowercase-binding arm would let a newly added rank silently
/// bypass whatever hierarchy rule the match encodes.
fn exhaustive_lockclass(file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    match_scan(&analysis.tree, file, analysis, out);
}

fn match_scan(nodes: &[Node], file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    for (i, node) in nodes.iter().enumerate() {
        if node.is_ident("match") {
            if let Some(body) = following_brace(nodes, i + 1) {
                check_match(body, file, analysis, out);
            }
        }
        if let Node::Group(g) = node {
            match_scan(&g.children, file, analysis, out);
        }
    }
}

/// The first `{…}` group among the siblings from `from` (a match body;
/// scrutinees cannot contain a bare brace group).
fn following_brace(nodes: &[Node], from: usize) -> Option<&Group> {
    nodes[from..]
        .iter()
        .find_map(|n| n.group().filter(|g| g.delim == '{'))
}

fn check_match(body: &Group, file: &SourceFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let arms = split_arms(&body.children);
    let is_lockclass = arms
        .iter()
        .any(|&(s, e)| span_mentions_ident(&body.children[s..e], "LockClass"));
    if !is_lockclass {
        return;
    }
    for &(s, e) in &arms {
        let pat = &body.children[s..e];
        let mut k = 0;
        while pat.get(k).is_some_and(|n| n.is_punct('|')) {
            k += 1;
        }
        let Some(first) = pat.get(k) else { continue };
        let Some(id) = first.ident() else { continue };
        let lone = pat.len() == k + 1 || pat.get(k + 1).is_some_and(|n| n.is_ident("if"));
        let catch_all = lone && (id == "_" || id.chars().next().is_some_and(|c| c.is_lowercase()));
        if catch_all {
            let line = first.line();
            if !analysis.lines[line - 1].in_test {
                out.push(Violation {
                    path: PathBuf::from(&file.rel_path),
                    line,
                    rule: "exhaustive-lockclass",
                    message: format!(
                        "catch-all arm `{id}` in a `match` over `LockClass`; list \
                         every variant so a newly added lock rank fails loudly here \
                         instead of inheriting this arm"
                    ),
                });
            }
        }
    }
}

/// Split a match body into arms: `(pattern_start, arrow_index)` pairs
/// over the body's children.
fn split_arms(children: &[Node]) -> Vec<(usize, usize)> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < children.len() {
        let start = i;
        // Find the `=>` of this arm.
        let mut arrow = None;
        while i < children.len() {
            if children[i].is_punct('=') && children.get(i + 1).is_some_and(|n| n.is_punct('>')) {
                arrow = Some(i);
                i += 2;
                break;
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((start, arrow));
        // Skip the arm body: a `{…}` block (plus optional comma), or an
        // expression up to the next top-level comma.
        if children
            .get(i)
            .and_then(Node::group)
            .is_some_and(|g| g.delim == '{')
        {
            i += 1;
            if children.get(i).is_some_and(|n| n.is_punct(',')) {
                i += 1;
            }
        } else {
            while i < children.len() && !children[i].is_punct(',') {
                i += 1;
            }
            i += 1;
        }
    }
    arms
}

/// Whether line `idx` (or a comment within the window above it) carries
/// the given annotation marker.
fn annotated(analysis: &Analysis, idx: usize, marker: &str) -> bool {
    let lo = idx.saturating_sub(ANNOTATION_WINDOW);
    analysis.lines[lo..=idx]
        .iter()
        .any(|l| l.comment.contains(marker))
}

/// Collect the workspace files the rules run over: every `.rs` under
/// `crates/`, `tests/`, `examples/`, plus each crate's `Cargo.toml`.
/// Directories named `corpus` are skipped — they hold deliberately
/// violating lint fixtures (see `crates/xtask/tests/corpus/`).
pub(crate) fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<std::io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "corpus" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                rel_path: rel,
                content: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, content: &str) -> SourceFile {
        SourceFile {
            rel_path: path.into(),
            content: content.into(),
        }
    }

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn stray_unsafe_is_flagged_with_location() {
        let v = run_all(&[file(
            "crates/filter/src/bitmap.rs",
            "fn f() {\n    unsafe { std::hint::unreachable_unchecked() }\n}\n",
        )]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-confinement");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn whitelisted_unsafe_needs_safety_comment() {
        let bad = run_all(&[file(
            "crates/gemm/src/simd.rs",
            "pub fn f() {\n    unsafe { core::arch::x86_64::_mm256_setzero_ps() };\n}\n",
        )]);
        assert_eq!(rules_of(&bad), vec!["safety-comment"]);

        let good = run_all(&[file(
            "crates/gemm/src/simd.rs",
            "pub fn f() {\n    // SAFETY: caller verified AVX2 support.\n    unsafe { core::arch::x86_64::_mm256_setzero_ps() };\n}\n",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged_but_tests_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        let v = run_all(&[file("crates/sql/src/executor.rs", src)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "no-panic");
    }

    #[test]
    fn spaced_cfg_test_region_is_exempt_too() {
        // The old string scanner missed `#[cfg( test )]` and
        // `#[cfg(all(feature = "x", test))]`; the tree walk must not.
        let src = "#[cfg( test )]\nmod tests {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n#[cfg(all(feature = \"slow\", test))]\nmod more {\n    fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(run_all(&[file("crates/sql/src/executor.rs", src)]).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = run_all(&[file("crates/sql/src/executor.rs", src)]);
        assert_eq!(rules_of(&v), vec!["no-panic"]);
    }

    #[test]
    fn panic_ok_annotation_is_accepted() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // PANIC-OK: x was checked non-empty by the caller's loop bound.\n    x.unwrap()\n}\n";
        assert!(run_all(&[file("crates/storage/src/page.rs", src)]).is_empty());
    }

    #[test]
    fn expect_and_panic_family_flagged() {
        let src = "fn f(x: Option<u8>) {\n    x.expect(\"boom\");\n    panic!(\"no\");\n    unreachable!();\n}\n";
        let v = run_all(&[file("crates/generalized/src/hnsw.rs", src)]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn cold_crates_may_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(run_all(&[file("crates/datagen/src/spec.rs", src)]).is_empty());
        // …and so may hot crates' integration tests and benches.
        assert!(run_all(&[file("crates/sql/tests/t.rs", src)]).is_empty());
    }

    #[test]
    fn parking_lot_banned_in_engine_crates_only() {
        let src = "use parking_lot::Mutex;\n";
        let v = run_all(&[file("crates/generalized/src/ivf_flat.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-discipline"]);
        assert!(run_all(&[file("crates/storage/src/buffer.rs", src)]).is_empty());
    }

    #[test]
    fn parking_lot_dependency_declaration_flagged() {
        let v = run_all(&[file(
            "crates/sql/Cargo.toml",
            "[dependencies]\nparking_lot = { workspace = true }\n",
        )]);
        assert_eq!(rules_of(&v), vec!["lock-discipline"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn storage_rank_lock_class_banned_outside_storage() {
        let src = "use vdb_storage::sync::OrderedRwLock;\nuse vdb_storage::LockClass;\nfn f() { let _l = OrderedRwLock::new(LockClass::Shard, 0u32); }\n";
        let v = run_all(&[file("crates/generalized/src/ivf_flat.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        assert_eq!(v[0].line, 3);
        // Workspace-level integration tests are in scope too.
        let vt = run_all(&[file(
            "tests/pool_mode_equivalence.rs",
            "fn t() { acquire(LockClass::PoolInner); }\n",
        )]);
        assert_eq!(rules_of(&vt), vec!["lock-hierarchy"]);
        // The storage crate itself mints pool-rank locks freely.
        assert!(run_all(&[file(
            "crates/storage/src/buffer.rs",
            "fn f() { let _l = OrderedRwLock::new(LockClass::Frame, ());\n}\n",
        )])
        .is_empty());
    }

    #[test]
    fn decoupled_rank_lock_classes_banned_outside_their_crate() {
        let src = "fn f() { let _l = OrderedRwLock::new(LockClass::DecoupledIndex, ()); }\n";
        let v = run_all(&[file("crates/sql/src/database.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        let v = run_all(&[file(
            "tests/decoupled_stress.rs",
            "fn f() { acquire(LockClass::ChangeLog); }\n",
        )]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        // The decoupled crate itself mints its ranks freely, and the
        // storage crate defines them.
        assert!(run_all(&[file("crates/decoupled/src/changelog.rs", src)]).is_empty());
        assert!(run_all(&[file("crates/storage/src/lockorder.rs", src)]).is_empty());
    }

    #[test]
    fn serve_rank_lock_class_banned_outside_serve() {
        let src = "fn f() { let _l = OrderedMutex::new(LockClass::ServeQueue, ()); }\n";
        let v = run_all(&[file("crates/sql/src/database.rs", src)]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        let v = run_all(&[file(
            "tests/serve_stress.rs",
            "fn f() { acquire(LockClass::ServeQueue); }\n",
        )]);
        assert_eq!(rules_of(&v), vec!["lock-hierarchy"]);
        // The serve crate mints its rank freely, and the storage crate
        // defines it.
        assert!(run_all(&[file("crates/serve/src/scheduler.rs", src)]).is_empty());
        assert!(run_all(&[file("crates/storage/src/lockorder.rs", src)]).is_empty());
    }

    #[test]
    fn serve_crate_is_panic_and_lock_disciplined() {
        let v = run_all(&[file(
            "crates/serve/src/scheduler.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\nuse parking_lot::Mutex;\n",
        )]);
        assert_eq!(rules_of(&v), vec!["no-panic", "lock-discipline"]);
    }

    #[test]
    fn decoupled_crate_is_panic_and_lock_disciplined() {
        let v = run_all(&[file(
            "crates/decoupled/src/index.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\nuse parking_lot::Mutex;\n",
        )]);
        assert_eq!(rules_of(&v), vec!["no-panic", "lock-discipline"]);
    }

    #[test]
    fn engine_rank_lock_class_is_fine_everywhere() {
        let src = "fn f() { let _m = vdb_storage::sync::OrderedMutex::engine(0u32); }\n";
        assert!(run_all(&[file("crates/sql/src/database.rs", src)]).is_empty());
    }

    #[test]
    fn lock_class_in_string_or_comment_is_not_a_finding() {
        let src =
            "// mentions LockClass::Shard in prose\nconst MSG: &str = \"LockClass::Frame\";\n";
        assert!(run_all(&[file("crates/bench/src/concurrent.rs", src)]).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_not_a_finding() {
        let src = "// this mentions unsafe code\nconst MSG: &str = \"unsafe\";\n";
        assert!(run_all(&[file("crates/filter/src/expr.rs", src)]).is_empty());
    }

    #[test]
    fn selected_rules_filter() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); unsafe {} }\n";
        let f = [file("crates/sql/src/planner.rs", src)];
        let only_panic = run_selected(&f, &["no-panic".to_string()]);
        assert_eq!(rules_of(&only_panic), vec!["no-panic"]);
    }

    // ---- atomic-ordering ----

    #[test]
    fn bare_relaxed_needs_annotation() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let v = run_selected(
            &[file("crates/storage/src/stats.rs", src)],
            &["atomic-ordering".to_string()],
        );
        assert_eq!(rules_of(&v), vec!["atomic-ordering"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn relaxed_ok_annotation_is_accepted() {
        let src = "fn f(c: &AtomicU64) {\n    // RELAXED-OK: monotonic stats counter, read only for reporting.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run_selected(
            &[file("crates/storage/src/stats.rs", src)],
            &["atomic-ordering".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn relaxed_in_tests_benches_and_profile_crate_is_fine() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        assert!(run_selected(
            &[file("crates/profile/src/lib.rs", src)],
            &["atomic-ordering".to_string()]
        )
        .is_empty());
        assert!(run_selected(
            &[file("crates/storage/tests/t.rs", src)],
            &["atomic-ordering".to_string()]
        )
        .is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(run_selected(
            &[file("crates/storage/src/stats.rs", test_mod)],
            &["atomic-ordering".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn sync_field_relaxed_has_no_annotation_escape() {
        let src = "impl F {\n    fn f(&self) {\n        // RELAXED-OK: (not accepted for protocol fields)\n        self.pin.store(0, Ordering::Relaxed);\n    }\n}\n";
        let v = run_selected(
            &[file("crates/storage/src/buffer.rs", src)],
            &["atomic-ordering".to_string()],
        );
        // The per-field check fires even though the bare-Relaxed check
        // is silenced by the annotation.
        assert_eq!(rules_of(&v), vec!["atomic-ordering"]);
        assert!(v[0].message.contains("synchronization atomic"));
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn sync_field_acquire_release_is_clean() {
        let src = "impl F {\n    fn f(&self) -> u64 {\n        self.pin.fetch_add(1, Ordering::Acquire);\n        self.tag.load(Ordering::Acquire)\n    }\n}\n";
        assert!(run_selected(
            &[file("crates/storage/src/buffer.rs", src)],
            &["atomic-ordering".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn non_sync_field_relaxed_only_needs_annotation() {
        let src = "impl F {\n    fn f(&self) {\n        // RELAXED-OK: usage counter is an eviction hint only.\n        self.usage.store(1, Ordering::Relaxed);\n    }\n}\n";
        assert!(run_selected(
            &[file("crates/storage/src/buffer.rs", src)],
            &["atomic-ordering".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn changelog_cursor_fields_are_protocol_fields() {
        let src = "impl L {\n    fn f(&self) {\n        self.applied.store(7, Ordering::Relaxed);\n    }\n}\n";
        let v = run_selected(
            &[file("crates/decoupled/src/changelog.rs", src)],
            &["atomic-ordering".to_string()],
        );
        // Two findings: bare un-annotated Relaxed + protocol field.
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "atomic-ordering"));
    }

    // ---- guard-discipline ----

    #[test]
    fn guard_held_across_pool_entry_is_flagged() {
        let src = "fn f(ix: &Ix, bm: &Bm) {\n    let inner = ix.inner.write();\n    bm.with_page(rel, blk, |p| p.len());\n}\n";
        let v = run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()],
        );
        assert_eq!(rules_of(&v), vec!["guard-discipline"]);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("`inner` (line 2)"));
    }

    #[test]
    fn dropped_guard_is_released() {
        let src = "fn f(ix: &Ix, bm: &Bm) {\n    let inner = ix.inner.write();\n    drop(inner);\n    bm.with_page(rel, blk, |p| p.len());\n}\n";
        assert!(run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src = "fn f(ix: &Ix, bm: &Bm) {\n    {\n        let g = ix.inner.read();\n        g.len();\n    }\n    bm.with_page_mut(rel, blk, |p| p.len());\n}\n";
        assert!(run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn guard_ok_annotation_is_accepted() {
        let src = "fn f(ix: &Ix) {\n    let mut inner = ix.inner.write();\n    // GUARD-OK: sanctioned DecoupledIndex -> ChangeLog descent; replay is heap-free.\n    ix.log.drain_with(|rec| inner.apply(rec));\n}\n";
        assert!(run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn passthrough_chain_is_not_a_guard_binding() {
        let src = "fn f(ix: &Ix, bm: &Bm) {\n    let n = ix.inner.read().len();\n    bm.with_page(rel, blk, |p| p.len());\n}\n";
        assert!(run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn deref_copy_is_not_a_guard_binding() {
        // `*m.lock()` copies out of a temporary guard; nothing is held
        // after the statement (the heap.rs last-block hint pattern).
        let src = "fn f(ix: &Ix, bm: &Bm) {\n    let hint = *ix.last_block.lock();\n    bm.with_page_mut(rel, blk, |p| p.len());\n}\n";
        assert!(run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn try_lock_let_some_binding_is_tracked() {
        let src = "fn f(ix: &Ix, log: &Log) {\n    let Some(g) = ix.inner.try_write() else { return };\n    log.drain_with(|r| g.apply(r));\n}\n";
        let v = run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["guard-discipline".to_string()],
        );
        assert_eq!(rules_of(&v), vec!["guard-discipline"]);
        assert!(v[0].message.contains("`g` (line 2)"));
    }

    #[test]
    fn fn_definitions_are_not_calls() {
        let src = "impl Log {\n    pub fn drain_with(&self, f: impl FnMut(&R)) -> u64 {\n        let records = self.records.lock();\n        records.len() as u64\n    }\n}\n";
        assert!(run_selected(
            &[file("crates/decoupled/src/changelog.rs", src)],
            &["guard-discipline".to_string()]
        )
        .is_empty());
    }

    // ---- exhaustive-lockclass ----

    #[test]
    fn lockclass_match_with_wildcard_is_flagged() {
        let src = "fn rank(c: LockClass) -> u8 {\n    match c {\n        LockClass::PoolInner => 0,\n        _ => 9,\n    }\n}\n";
        let v = run_selected(
            &[file("crates/storage/src/lockorder.rs", src)],
            &["exhaustive-lockclass".to_string()],
        );
        assert_eq!(rules_of(&v), vec!["exhaustive-lockclass"]);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn lockclass_match_with_binding_arm_is_flagged() {
        let src = "fn rank(c: LockClass) -> u8 {\n    match c {\n        LockClass::PoolInner => 0,\n        other => other.rank(),\n    }\n}\n";
        let v = run_selected(
            &[file("crates/storage/src/lockorder.rs", src)],
            &["exhaustive-lockclass".to_string()],
        );
        assert_eq!(rules_of(&v), vec!["exhaustive-lockclass"]);
    }

    #[test]
    fn exhaustive_lockclass_match_is_clean() {
        let src = "fn rank(c: LockClass) -> u8 {\n    match c {\n        LockClass::PoolInner => 0,\n        LockClass::Shard => 0,\n        LockClass::Frame => 1,\n        LockClass::DecoupledIndex => 2,\n        LockClass::ChangeLog => 3,\n        LockClass::EngineShared => 4,\n    }\n}\n";
        assert!(run_selected(
            &[file("crates/storage/src/lockorder.rs", src)],
            &["exhaustive-lockclass".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn non_lockclass_match_may_use_wildcards() {
        let src =
            "fn f(x: u8) -> u8 {\n    match x {\n        0 => 1,\n        _ => 2,\n    }\n}\n";
        assert!(run_selected(
            &[file("crates/storage/src/lockorder.rs", src)],
            &["exhaustive-lockclass".to_string()]
        )
        .is_empty());
    }

    #[test]
    fn nested_lockclass_match_is_found() {
        let src = "fn f(c: LockClass) -> u8 {\n    if true {\n        match c {\n            LockClass::Frame => 1,\n            _ => 0,\n        }\n    } else { 0 }\n}\n";
        let v = run_selected(
            &[file("crates/decoupled/src/index.rs", src)],
            &["exhaustive-lockclass".to_string()],
        );
        assert_eq!(rules_of(&v), vec!["exhaustive-lockclass"]);
        assert_eq!(v[0].line, 5);
    }

    // ---- JSON ----

    #[test]
    fn json_output_escapes_and_roundtrips_shape() {
        let v = vec![Violation {
            path: PathBuf::from("crates/a/src/b.rs"),
            line: 3,
            rule: "no-panic",
            message: "say \"why\"\nback\\slash".into(),
        }];
        let j = to_json(&v);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"path\":\"crates/a/src/b.rs\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\\\"why\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\\\\slash"));
        assert_eq!(to_json(&[]), "[]");
    }
}

//! A dependency-free lexer + token-tree ("AST-lite") model of a Rust
//! source file.
//!
//! This replaces the old per-line string scanner (`scan.rs`). It makes
//! one pass over the source and produces two coordinated views:
//!
//! 1. **Line channels** — per-line *code* text (string/char contents
//!    blanked, comments stripped) and *comment* text, exactly the shape
//!    the original rules consumed, so `unsafe` inside a string literal
//!    is never a finding and `// SAFETY:` annotations are recognized.
//! 2. **A token tree** — identifiers, literals, punctuation, and
//!    delimiter groups (`(…)`, `[…]`, `{…}`) with 1-based line numbers,
//!    which is what the structural rules (`atomic-ordering`,
//!    `guard-discipline`, `exhaustive-lockclass`) walk. `#[cfg(test)]`
//!    regions are derived from the tree by parsing the cfg predicate
//!    (including `any`/`all` nesting and `not(test)`), not by substring
//!    matching, so `#[cfg( test )]`, `#[cfg(all(feature = "x", test))]`
//!    and nested inner test modules are all handled.
//!
//! `syn` would do this better, but the tool is deliberately
//! dependency-free so it builds in minimal/offline environments (see
//! `crates/xtask/Cargo.toml`); the rules only need token shapes, not
//! full syntax.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub(crate) struct Line {
    /// Source text with comments removed and string/char literal
    /// *contents* replaced by spaces (delimiting quotes are kept, so
    /// `.expect("` is still recognizable as a call with a literal).
    pub(crate) code: String,
    /// Concatenated comment text on this line (line and block comments,
    /// including doc comments).
    pub(crate) comment: String,
    /// Whether the line is inside a `#[cfg(test)]`-gated item.
    pub(crate) in_test: bool,
}

/// Lexical class of a leaf token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, kept verbatim).
    Ident,
    /// String literal of any flavor (contents not retained).
    Str,
    /// Char or byte-char literal (contents not retained).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime or loop label (`'a`).
    Lifetime,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// A leaf token with its 1-based source line.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    pub(crate) kind: TokKind,
    pub(crate) text: String,
    pub(crate) line: usize,
}

/// A delimiter group: `delim` is the opening character.
#[derive(Debug, Clone)]
pub(crate) struct Group {
    pub(crate) delim: char,
    pub(crate) open_line: usize,
    pub(crate) close_line: usize,
    pub(crate) children: Vec<Node>,
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Tok(Tok),
    Group(Group),
}

impl Node {
    /// The group, if this node is one.
    pub(crate) fn group(&self) -> Option<&Group> {
        match self {
            Node::Tok(_) => None,
            Node::Group(g) => Some(g),
        }
    }

    /// The identifier text, if this node is an identifier token.
    pub(crate) fn ident(&self) -> Option<&str> {
        match self {
            Node::Tok(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// Whether this node is the given identifier.
    pub(crate) fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this node is the given punctuation character.
    pub(crate) fn is_punct(&self, c: char) -> bool {
        match self {
            Node::Tok(t) => t.kind == TokKind::Punct && t.text.starts_with(c),
            Node::Group(_) => false,
        }
    }

    /// 1-based source line (a group's opening line).
    pub(crate) fn line(&self) -> usize {
        match self {
            Node::Tok(t) => t.line,
            Node::Group(g) => g.open_line,
        }
    }
}

/// Whether `nodes[i..]` starts with the path `a::b` (four tokens).
pub(crate) fn path_at(nodes: &[Node], i: usize, a: &str, b: &str) -> bool {
    nodes.get(i).is_some_and(|n| n.is_ident(a))
        && nodes.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && nodes.get(i + 2).is_some_and(|n| n.is_punct(':'))
        && nodes.get(i + 3).is_some_and(|n| n.is_ident(b))
}

/// The group at `nodes[i]`, if it opens with `delim`.
pub(crate) fn group_at(nodes: &[Node], i: usize, delim: char) -> Option<&Group> {
    nodes
        .get(i)
        .and_then(Node::group)
        .filter(|g| g.delim == delim)
}

/// The analyzed file: line channels plus the token tree.
#[derive(Debug, Default)]
pub(crate) struct Analysis {
    /// 0-based vector of [`Line`]s (line `i` is source line `i + 1`).
    pub(crate) lines: Vec<Line>,
    /// Top-level token-tree nodes.
    pub(crate) tree: Vec<Node>,
}

/// Lex and structure `content`.
pub(crate) fn analyze(content: &str) -> Analysis {
    let mut lx = Lexer::new(content);
    lx.run();
    let tree = build_tree(lx.toks);
    let mut lines = lx.lines;
    mark_test_regions(&tree, &mut lines);
    Analysis { lines, tree }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

enum RawTok {
    Tok(Tok),
    Open(char, usize),
    Close(char, usize),
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    /// 0-based current line index.
    line: usize,
    lines: Vec<Line>,
    toks: Vec<RawTok>,
}

impl Lexer {
    fn new(content: &str) -> Lexer {
        let n_lines = content.split('\n').count();
        Lexer {
            chars: content.chars().collect(),
            i: 0,
            line: 0,
            lines: vec![Line::default(); n_lines],
            toks: Vec::new(),
        }
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    /// Consume one char, tracking line numbers. Returns the char.
    fn bump(&mut self) -> char {
        let c = self.chars[self.i];
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        c
    }

    /// Consume one char, echoing it into the code channel.
    fn eat_code(&mut self) {
        let c = self.chars[self.i];
        if c != '\n' {
            let l = self.line;
            self.lines[l].code.push(c);
        }
        self.bump();
    }

    /// Consume one char, writing a space into the code channel
    /// (string/char literal contents).
    fn eat_blank(&mut self) {
        let c = self.chars[self.i];
        if c != '\n' {
            let l = self.line;
            self.lines[l].code.push(' ');
        }
        self.bump();
    }

    /// Consume one char, echoing it into the comment channel.
    fn eat_comment(&mut self) {
        let c = self.chars[self.i];
        if c != '\n' {
            let l = self.line;
            self.lines[l].comment.push(c);
        }
        self.bump();
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let n1 = self.peek(1);
            if c == '/' && n1 == Some('/') {
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.eat_comment();
                }
            } else if c == '/' && n1 == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string_lit(None);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if is_ident_start(c) {
                if let Some(hashes) = self.raw_string_prefix() {
                    // r"…", r#"…"#, b"…", br"…", c"…", cr"…": consume the
                    // prefix silently, then the quoted body.
                    while self.peek(0) != Some('"') {
                        self.bump();
                    }
                    self.string_lit(Some(hashes));
                } else if c == 'b' && n1 == Some('\'') {
                    self.bump();
                    self.char_lit();
                } else if c == 'r' && n1 == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                    // Raw identifier: keep the `r#` so `r#match` never
                    // compares equal to the `match` keyword.
                    let line = self.line + 1;
                    let mut text = String::from("r#");
                    self.eat_code();
                    self.eat_code();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        text.push(self.peek(0).unwrap());
                        self.eat_code();
                    }
                    self.push_tok(TokKind::Ident, text, line);
                } else {
                    let line = self.line + 1;
                    let mut text = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        text.push(self.peek(0).unwrap());
                        self.eat_code();
                    }
                    self.push_tok(TokKind::Ident, text, line);
                }
            } else if c.is_ascii_digit() {
                self.number();
            } else if c.is_whitespace() {
                self.eat_code();
            } else {
                let line = self.line + 1;
                match c {
                    '(' | '[' | '{' => self.toks.push(RawTok::Open(c, line)),
                    ')' | ']' | '}' => self.toks.push(RawTok::Close(c, line)),
                    _ => self.push_tok(TokKind::Punct, c.to_string(), line),
                }
                self.eat_code();
            }
        }
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: usize) {
        self.toks.push(RawTok::Tok(Tok { kind, text, line }));
    }

    /// If the chars at the cursor open a raw/byte/C string (`r"`,
    /// `r#"`, `b"`, `br##"`, `c"`, …), the number of `#`s.
    fn raw_string_prefix(&self) -> Option<u32> {
        let mut j = self.i;
        match self.chars.get(j).copied()? {
            'b' | 'c' => {
                j += 1;
                if self.chars.get(j).copied() == Some('r') {
                    j += 1;
                }
            }
            'r' => j += 1,
            _ => return None,
        }
        let mut hashes = 0u32;
        while self.chars.get(j).copied() == Some('#') {
            hashes += 1;
            j += 1;
        }
        (self.chars.get(j).copied() == Some('"')).then_some(hashes)
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => break,
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some('\n'), _) => {
                    self.bump();
                }
                _ => self.eat_comment(),
            }
        }
    }

    /// Consume a string literal; the cursor sits on the opening `"`.
    /// `raw_hashes` is `Some(n)` for `r#*"` raw strings.
    fn string_lit(&mut self, raw_hashes: Option<u32>) {
        let line = self.line + 1;
        self.eat_code(); // opening quote
        match raw_hashes {
            None => loop {
                match self.peek(0) {
                    None => break,
                    Some('\\') => {
                        self.eat_blank();
                        if self.peek(0) == Some('\n') {
                            self.bump(); // escaped line continuation
                        } else if self.peek(0).is_some() {
                            self.eat_blank();
                        }
                    }
                    Some('"') => {
                        self.eat_code();
                        break;
                    }
                    Some('\n') => {
                        self.bump();
                    }
                    _ => self.eat_blank(),
                }
            },
            Some(h) => loop {
                match self.peek(0) {
                    None => break,
                    Some('"') if self.closes_raw(h) => {
                        self.eat_code();
                        for _ in 0..h {
                            self.bump();
                        }
                        break;
                    }
                    Some('\n') => {
                        self.bump();
                    }
                    _ => self.eat_blank(),
                }
            },
        }
        self.push_tok(TokKind::Str, "\"\"".into(), line);
    }

    /// Does the `"` at the cursor close a raw string with `h` hashes?
    fn closes_raw(&self, h: u32) -> bool {
        (1..=h as usize).all(|k| self.peek(k) == Some('#'))
    }

    fn char_or_lifetime(&mut self) {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(c) if is_ident_continue(c) => {
                // `'a'` is a char, `'a` / `'static` are lifetimes.
                self.peek(2) == Some('\'')
            }
            Some('\'') => false, // `''` — malformed, treat as lifetime-ish
            Some(_) => true,     // `'('`, `' '`, …
            None => false,
        };
        if is_char {
            self.char_lit();
        } else {
            let line = self.line + 1;
            let mut text = String::from("'");
            self.eat_code();
            while self.peek(0).is_some_and(is_ident_continue) {
                text.push(self.peek(0).unwrap());
                self.eat_code();
            }
            self.push_tok(TokKind::Lifetime, text, line);
        }
    }

    /// Consume a char/byte-char literal; the cursor sits on the `'`.
    fn char_lit(&mut self) {
        let line = self.line + 1;
        self.eat_code(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.eat_blank();
                    if self.peek(0).is_some() {
                        self.eat_blank();
                    }
                }
                Some('\'') => {
                    self.eat_code();
                    break;
                }
                Some('\n') => {
                    self.bump();
                }
                _ => self.eat_blank(),
            }
        }
        self.push_tok(TokKind::Char, "''".into(), line);
    }

    fn number(&mut self) {
        let line = self.line + 1;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.eat_code();
            } else if c == '.'
                && !text.contains('.')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // `1.5` is one number; `1..5` and `x.0.sqrt()` are not.
                text.push(c);
                self.eat_code();
            } else if (c == '+' || c == '-')
                && !text.starts_with("0x")
                && text.ends_with(['e', 'E'])
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Float exponent sign: `1e-5`.
                text.push(c);
                self.eat_code();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Num, text, line);
    }
}

fn delims_match(open: char, close: char) -> bool {
    matches!((open, close), ('(', ')') | ('[', ']') | ('{', '}'))
}

fn build_tree(toks: Vec<RawTok>) -> Vec<Node> {
    let mut top: Vec<Node> = Vec::new();
    // (open delim, open line, children)
    let mut stack: Vec<(char, usize, Vec<Node>)> = Vec::new();
    let mut last_line = 1usize;
    for t in toks {
        let dest =
            |stack: &mut Vec<(char, usize, Vec<Node>)>, top: &mut Vec<Node>, n: Node| match stack
                .last_mut()
            {
                Some((_, _, children)) => children.push(n),
                None => top.push(n),
            };
        match t {
            RawTok::Tok(tok) => {
                last_line = tok.line;
                dest(&mut stack, &mut top, Node::Tok(tok));
            }
            RawTok::Open(d, line) => {
                last_line = line;
                stack.push((d, line, Vec::new()));
            }
            RawTok::Close(d, line) => {
                last_line = line;
                match stack.last() {
                    Some(&(open, _, _)) if delims_match(open, d) => {
                        let (delim, open_line, children) = stack.pop().unwrap();
                        let g = Node::Group(Group {
                            delim,
                            open_line,
                            close_line: line,
                            children,
                        });
                        dest(&mut stack, &mut top, g);
                    }
                    // Mismatched or stray close: keep it as punctuation
                    // so a malformed file degrades instead of panicking.
                    _ => dest(
                        &mut stack,
                        &mut top,
                        Node::Tok(Tok {
                            kind: TokKind::Punct,
                            text: d.to_string(),
                            line,
                        }),
                    ),
                }
            }
        }
    }
    // Unclosed groups (truncated file): close them at the last line.
    while let Some((delim, open_line, children)) = stack.pop() {
        let g = Node::Group(Group {
            delim,
            open_line,
            close_line: last_line,
            children,
        });
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(g),
            None => top.push(g),
        }
    }
    top
}

/// Mark lines inside `#[cfg(test)]`-gated items by walking the tree:
/// an outer `#[cfg(…)]` attribute whose predicate can enable `test`
/// gates the item that follows (up to its `{…}` body or terminating
/// `;`); `#![cfg(test)]` gates the rest of the enclosing scope.
fn mark_test_regions(nodes: &[Node], lines: &mut [Line]) {
    let mut i = 0;
    while i < nodes.len() {
        if nodes[i].is_punct('#') {
            let (inner, attr_idx) = if nodes.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                (true, i + 2)
            } else {
                (false, i + 1)
            };
            if let Some(attr) = group_at(nodes, attr_idx, '[') {
                if attr_is_cfg_test(&attr.children) {
                    let lo = nodes[i].line();
                    let hi = if inner {
                        lines.len() // `#![cfg(test)]`: rest of the scope
                    } else {
                        item_end_line(nodes, attr_idx + 1).unwrap_or(lines.len())
                    };
                    let hi = hi.min(lines.len());
                    for line in lines.iter_mut().take(hi).skip(lo - 1) {
                        line.in_test = true;
                    }
                }
                i = attr_idx + 1;
                continue;
            }
        }
        if let Node::Group(g) = &nodes[i] {
            mark_test_regions(&g.children, lines);
        }
        i += 1;
    }
}

/// The line on which the item starting at `nodes[from]` ends: the close
/// of its first `{…}` body, or its terminating `;`.
fn item_end_line(nodes: &[Node], from: usize) -> Option<usize> {
    let mut i = from;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Group(g) if g.delim == '{' => return Some(g.close_line),
            Node::Tok(t) if t.kind == TokKind::Punct && t.text == ";" => return Some(t.line),
            _ => i += 1,
        }
    }
    nodes.last().map(|n| n.line())
}

/// Whether an attribute body (the tokens inside `#[…]`) is a `cfg`
/// whose predicate can enable `test`. Understands `any`/`all` nesting
/// and skips `not(…)` subtrees, so `#[cfg(not(test))]` does not gate.
fn attr_is_cfg_test(attr: &[Node]) -> bool {
    if !attr.first().is_some_and(|n| n.is_ident("cfg")) {
        return false;
    }
    match group_at(attr, 1, '(') {
        Some(pred) => cfg_pred_mentions_test(&pred.children),
        None => false,
    }
}

fn cfg_pred_mentions_test(nodes: &[Node]) -> bool {
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Tok(t)
                if t.kind == TokKind::Ident
                    && t.text == "not"
                    && group_at(nodes, i + 1, '(').is_some() =>
            {
                i += 2; // skip the negated subtree
                continue;
            }
            Node::Tok(t) if t.kind == TokKind::Ident && t.text == "test" => return true,
            Node::Group(g) if cfg_pred_mentions_test(&g.children) => return true,
            _ => {}
        }
        i += 1;
    }
    false
}

/// Whether `code` contains `word` as a standalone token (not as part of
/// a longer identifier).
pub(crate) fn has_token(code: &str, word: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(nodes: &[Node]) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(nodes: &[Node], out: &mut Vec<String>) {
            for n in nodes {
                match n {
                    Node::Tok(t) if t.kind == TokKind::Ident => out.push(t.text.clone()),
                    Node::Group(g) => walk(&g.children, out),
                    _ => {}
                }
            }
        }
        walk(nodes, &mut out);
        out
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let a = analyze("let x = \"unsafe\"; // unsafe in comment\nunsafe {}\n");
        assert!(!has_token(&a.lines[0].code, "unsafe"));
        assert!(a.lines[0].comment.contains("unsafe in comment"));
        assert!(has_token(&a.lines[1].code, "unsafe"));
        // …and the token stream agrees: exactly one `unsafe` ident.
        assert_eq!(idents(&a.tree).iter().filter(|i| *i == "unsafe").count(), 1);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let a = analyze("let x = r#\"unsafe \" still\"#; let y = unsafe_marker;\n");
        assert!(!has_token(&a.lines[0].code, "unsafe"));
        assert!(a.lines[0].code.contains("unsafe_marker"));
    }

    #[test]
    fn byte_and_c_strings_are_blanked() {
        let a = analyze("let x = b\"unsafe\"; let y = br##\"panic!(\"#\"##; f();\n");
        assert!(!has_token(&a.lines[0].code, "unsafe"));
        assert!(!a.lines[0].code.contains("panic"));
        assert!(a.lines[0].code.contains("f()"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let a = analyze(
            "fn f<'a>(x: &'a str) -> &'a str { x } // SAFETY: none\nlet c = 'x'; let d = '\\n'; unsafe {}\n",
        );
        assert!(a.lines[0].comment.contains("SAFETY"));
        assert!(has_token(&a.lines[1].code, "unsafe"));
        assert!(!a.lines[1].code.contains('x'));
    }

    #[test]
    fn nested_block_comments() {
        let a = analyze("/* outer /* inner */ still comment */ code_here\n");
        assert!(a.lines[0].code.contains("code_here"));
        assert!(a.lines[0].comment.contains("outer"));
        assert!(!a.lines[0].code.contains("inner"));
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let a = analyze("let x = \"a\\\"unsafe\"; unsafe {}\n");
        let code = &a.lines[0].code;
        assert!(has_token(code, "unsafe"));
        assert_eq!(code.matches("unsafe").count(), 1);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("unsafe_fn()", "unsafe"));
        assert!(!has_token("my_unsafe", "unsafe"));
        assert!(has_token("(unsafe)", "unsafe"));
    }

    #[test]
    fn tree_structure_and_lines() {
        let a = analyze("fn f(a: u8) {\n    g(a);\n}\n");
        // Top level: `fn`, `f`, `(…)`, `{…}`.
        assert!(a.tree[0].is_ident("fn"));
        assert!(a.tree[1].is_ident("f"));
        let args = a.tree[2].group().unwrap();
        assert_eq!(args.delim, '(');
        assert_eq!(args.open_line, 1);
        let body = a.tree[3].group().unwrap();
        assert_eq!(body.delim, '{');
        assert_eq!((body.open_line, body.close_line), (1, 3));
        assert!(body.children[0].is_ident("g"));
        assert_eq!(body.children[0].line(), 2);
    }

    #[test]
    fn path_tokens_split_into_colons() {
        let a = analyze("use std::sync::atomic::Ordering;\nOrdering::Relaxed\n");
        let flat: Vec<&Node> = a.tree.iter().collect();
        let pos = flat.iter().position(|n| n.is_ident("Ordering")).unwrap();
        // Find the *second* occurrence, which starts the Relaxed path.
        let pos2 = pos
            + 1
            + flat[pos + 1..]
                .iter()
                .position(|n| n.is_ident("Ordering"))
                .unwrap();
        assert!(path_at(&a.tree, pos2, "Ordering", "Relaxed"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let a = analyze(src);
        assert!(!a.lines[0].in_test);
        assert!(a.lines[1].in_test);
        assert!(a.lines[2].in_test);
        assert!(a.lines[3].in_test);
        assert!(a.lines[4].in_test);
        assert!(!a.lines[5].in_test);
    }

    #[test]
    fn cfg_test_with_spacing_and_reordered_all_is_marked() {
        let src = "#[cfg( test )]\nmod a { fn t() {} }\n#[cfg(all(feature = \"x\", test))]\nmod b { fn t() {} }\n";
        let a = analyze(src);
        assert!(a.lines[0].in_test && a.lines[1].in_test);
        assert!(a.lines[2].in_test && a.lines[3].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))]\nfn live() {}\n#[cfg(any(not(test), unix))]\nfn live2() {}\n";
        let a = analyze(src);
        assert!(a.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn feature_named_test_is_not_marked() {
        let a = analyze("#[cfg(feature = \"test\")]\nfn live() {}\n");
        assert!(a.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn nested_inner_test_module_is_marked() {
        let src = "mod outer {\n    fn live() {}\n    #[cfg(test)]\n    mod tests {\n        fn t() {}\n    }\n    fn live2() {}\n}\n";
        let a = analyze(src);
        assert!(!a.lines[1].in_test, "live fn marked");
        assert!(a.lines[2].in_test && a.lines[3].in_test && a.lines[4].in_test);
        assert!(!a.lines[6].in_test, "code after the inner mod marked");
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let a = analyze(src);
        assert!(a.lines[0].in_test && a.lines[1].in_test);
        assert!(!a.lines[2].in_test);
    }

    #[test]
    fn inner_cfg_test_attribute_gates_rest_of_file() {
        let src = "#![cfg(test)]\nfn anything() { x.unwrap(); }\n";
        let a = analyze(src);
        assert!(a.lines.iter().all(|l| l.in_test));
    }

    #[test]
    fn raw_identifier_is_not_its_keyword() {
        let a = analyze("let r#match = 1;\n");
        assert!(idents(&a.tree).contains(&"r#match".to_string()));
        assert!(!idents(&a.tree).contains(&"match".to_string()));
    }

    #[test]
    fn unbalanced_input_degrades_gracefully() {
        let a = analyze("fn f() { let x = (1;\n} extra }\n");
        assert!(!a.tree.is_empty());
        let a2 = analyze("fn g(a: u8 {\n");
        assert!(!a2.tree.is_empty());
    }
}

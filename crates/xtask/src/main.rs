//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the static-analysis pass described in DESIGN.md §11/§14.
//!
//! ```text
//! cargo xtask lint                 # run every rule over the workspace
//! cargo xtask lint --rule no-panic # run a subset
//! cargo xtask lint --list          # list rules
//! cargo xtask lint --json          # machine-readable findings (CI annotations)
//! ```
//!
//! Exits 0 on a clean tree, 1 on usage errors, 2 when findings exist.

mod ast;
mod rules;

use std::path::PathBuf;
use std::process::ExitCode;

const RULES: &[(&str, &str)] = &[
    (
        "unsafe-confinement",
        "`unsafe` only in whitelisted kernel/codec files",
    ),
    (
        "safety-comment",
        "every whitelisted `unsafe` site carries `// SAFETY:`",
    ),
    (
        "no-panic",
        "no unwrap/expect/panic! in non-test hot-path code (or `// PANIC-OK:`)",
    ),
    (
        "lock-discipline",
        "no direct parking_lot locks in engine crates; use vdb_storage::sync",
    ),
    (
        "lock-hierarchy",
        "no storage-rank LockClass (PoolInner/Shard/Frame) outside crates/storage",
    ),
    (
        "atomic-ordering",
        "Ordering::Relaxed needs `// RELAXED-OK:`; protocol atomics (pin/dirty/tag, head/applied) never Relaxed",
    ),
    (
        "guard-discipline",
        "no lock guard held across a buffer-pool entry point or change-log replay (or `// GUARD-OK:`)",
    ),
    (
        "exhaustive-lockclass",
        "every match over LockClass lists all variants; no catch-all arm",
    ),
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}` (expected `lint`)");
            ExitCode::from(1)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--rule <name>]… [--list] [--json] [--root <dir>]");
            ExitCode::from(1)
        }
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut only: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for (name, desc) in RULES {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--rule" => match it.next() {
                Some(name) if RULES.iter().any(|(n, _)| *n == name) => only.push(name),
                Some(name) => {
                    eprintln!("unknown rule `{name}`; try `cargo xtask lint --list`");
                    return ExitCode::from(1);
                }
                None => {
                    eprintln!("--rule needs a rule name");
                    return ExitCode::from(1);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(1);
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::from(1);
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let files = match rules::collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(1);
        }
    };
    let violations = rules::run_selected(&files, &only);
    if json {
        // Machine-readable output only on stdout; CI pipes it through
        // jq into GitHub `::error` annotations.
        println!("{}", rules::to_json(&violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} files, {} rules)",
            files.len(),
            if only.is_empty() {
                RULES.len()
            } else {
                only.len()
            }
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} finding(s)", violations.len());
        ExitCode::from(2)
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the nearest ancestor of the current directory with a
/// `[workspace]` manifest.
fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

#[cfg(test)]
mod repo_tests {
    use super::*;

    /// The acceptance gate, enforced in `cargo test` as well as CI: the
    /// real tree must be clean under every rule.
    #[test]
    fn repo_tree_is_clean() {
        let root = workspace_root();
        assert!(
            root.join("crates").is_dir(),
            "workspace root not found from {root:?}"
        );
        let files = rules::collect_workspace(&root).expect("workspace readable");
        assert!(
            files.len() > 50,
            "expected a populated workspace, got {} files",
            files.len()
        );
        let violations = rules::run_all(&files);
        assert!(
            violations.is_empty(),
            "xtask lint findings:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The seeded violation corpus must stay *dirty*: every blind spot
    /// the AST pass fixed is pinned by at least one fixture finding.
    #[test]
    fn corpus_findings_are_pinned() {
        let corpus = match std::env::var("CARGO_MANIFEST_DIR") {
            // Under cargo: relative to this crate; standalone: relative
            // to the workspace root.
            Ok(dir) => PathBuf::from(dir).join("tests/corpus"),
            Err(_) => workspace_root().join("crates/xtask/tests/corpus"),
        };
        assert!(corpus.is_dir(), "corpus missing at {corpus:?}");
        let files = rules::collect_workspace(&corpus).expect("corpus readable");
        assert!(!files.is_empty(), "corpus collected no files");
        let violations = rules::run_all(&files);
        let got: Vec<(String, usize, &str)> = violations
            .iter()
            .map(|v| (v.path.display().to_string(), v.line, v.rule))
            .collect();
        let expect: &[(&str, usize, &str)] = &[
            (
                "crates/decoupled/src/guard_discipline.rs",
                10,
                "guard-discipline",
            ),
            (
                "crates/decoupled/src/guard_discipline.rs",
                19,
                "guard-discipline",
            ),
            (
                "crates/filter/src/scanner_blind_spots.rs",
                15,
                "unsafe-confinement",
            ),
            ("crates/filter/src/scanner_blind_spots.rs", 24, "no-panic"),
            ("crates/sql/Cargo.toml", 6, "lock-discipline"),
            ("crates/sql/src/cfg_test_inner.rs", 25, "no-panic"),
            ("crates/sql/src/serve_queue_rank.rs", 10, "lock-hierarchy"),
            ("crates/storage/src/buffer.rs", 14, "atomic-ordering"),
            ("crates/storage/src/buffer.rs", 23, "atomic-ordering"),
            ("crates/storage/src/buffer.rs", 23, "atomic-ordering"),
            (
                "crates/storage/src/lockclass_match.rs",
                21,
                "exhaustive-lockclass",
            ),
            (
                "crates/storage/src/lockclass_match.rs",
                28,
                "exhaustive-lockclass",
            ),
        ];
        let expect: Vec<(String, usize, &str)> = expect
            .iter()
            .map(|&(p, l, r)| (p.to_string(), l, r))
            .collect();
        assert_eq!(
            got,
            expect,
            "corpus drifted; findings:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the static-analysis pass described in DESIGN.md §11.
//!
//! ```text
//! cargo xtask lint                 # run every rule over the workspace
//! cargo xtask lint --rule no-panic # run a subset
//! cargo xtask lint --list          # list rules
//! ```
//!
//! Exits 0 on a clean tree, 1 on usage errors, 2 when findings exist.

mod rules;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

const RULES: &[(&str, &str)] = &[
    (
        "unsafe-confinement",
        "`unsafe` only in whitelisted kernel/codec files",
    ),
    (
        "safety-comment",
        "every whitelisted `unsafe` site carries `// SAFETY:`",
    ),
    (
        "no-panic",
        "no unwrap/expect/panic! in non-test hot-path code (or `// PANIC-OK:`)",
    ),
    (
        "lock-discipline",
        "no direct parking_lot locks in engine crates; use vdb_storage::sync",
    ),
    (
        "lock-hierarchy",
        "no storage-rank LockClass (PoolInner/Shard/Frame) outside crates/storage",
    ),
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}` (expected `lint`)");
            ExitCode::from(1)
        }
        None => {
            eprintln!("usage: cargo xtask lint [--rule <name>]… [--list] [--root <dir>]");
            ExitCode::from(1)
        }
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut only: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for (name, desc) in RULES {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--rule" => match it.next() {
                Some(name) if RULES.iter().any(|(n, _)| *n == name) => only.push(name),
                Some(name) => {
                    eprintln!("unknown rule `{name}`; try `cargo xtask lint --list`");
                    return ExitCode::from(1);
                }
                None => {
                    eprintln!("--rule needs a rule name");
                    return ExitCode::from(1);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(1);
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::from(1);
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let files = match rules::collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(1);
        }
    };
    let violations = rules::run_selected(&files, &only);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} files, {} rules)",
            files.len(),
            if only.is_empty() {
                RULES.len()
            } else {
                only.len()
            }
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} finding(s)", violations.len());
        ExitCode::from(2)
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the nearest ancestor of the current directory with a
/// `[workspace]` manifest.
fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

#[cfg(test)]
mod repo_tests {
    use super::*;

    /// The acceptance gate, enforced in `cargo test` as well as CI: the
    /// real tree must be clean under every rule.
    #[test]
    fn repo_tree_is_clean() {
        let root = workspace_root();
        assert!(
            root.join("crates").is_dir(),
            "workspace root not found from {root:?}"
        );
        let files = rules::collect_workspace(&root).expect("workspace readable");
        assert!(
            files.len() > 50,
            "expected a populated workspace, got {} files",
            files.len()
        );
        let violations = rules::run_all(&files);
        assert!(
            violations.is_empty(),
            "xtask lint findings:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

//! A minimal lexical model of a Rust source file.
//!
//! The lint rules need three things per line: the *code* text with
//! string/char contents and comments blanked out (so `unsafe` inside a
//! string literal is not a finding), the *comment* text (so `// SAFETY:`
//! and `// PANIC-OK:` annotations can be recognized), and whether the
//! line sits inside a `#[cfg(test)]`-gated region. A full parser is not
//! required for any rule this tool enforces, and avoiding `syn` keeps
//! the binary dependency-free and buildable offline.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub(crate) struct Line {
    /// Source text with comments removed and string/char literal
    /// *contents* replaced by spaces (delimiting quotes are kept, so
    /// `.expect("` is still recognizable as a call with a literal).
    pub(crate) code: String,
    /// Concatenated comment text on this line (line and block comments,
    /// including doc comments).
    pub(crate) comment: String,
    /// Whether the line is inside a `#[cfg(test)]`-gated item.
    pub(crate) in_test: bool,
}

/// A scanned source file: 0-based vector of [`Line`]s (line `i` is
/// source line `i + 1`).
#[derive(Debug, Default)]
pub(crate) struct Scanned {
    /// The file's lines.
    pub(crate) lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    /// String literal; `raw_hashes` is `Some(n)` for `r#*"` raw strings.
    Str {
        raw_hashes: Option<u32>,
    },
    CharLit,
}

/// Scan `content` into per-line code/comment channels and mark
/// `#[cfg(test)]` regions.
pub(crate) fn scan(content: &str) -> Scanned {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Normal;
    let chars: Vec<char> = content.chars().collect();
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            lines.push(std::mem::take(&mut cur));
            if state == State::LineComment {
                state = State::Normal;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        cur.code.push('"');
                        state = State::Str { raw_hashes: None };
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        cur.code.push('"');
                        state = State::Str {
                            raw_hashes: Some(hashes),
                        };
                        i += consumed;
                    }
                    'b' if next == Some('\'') => {
                        cur.code.push('\'');
                        state = State::CharLit;
                        i += 2;
                    }
                    '\'' => {
                        if is_char_literal_start(&chars, i) {
                            cur.code.push('\'');
                            state = State::CharLit;
                        } else {
                            // A lifetime (`'a`) or loop label: plain code.
                            cur.code.push('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes: None } => match c {
                '\\' => {
                    cur.code.push(' ');
                    if chars.get(i + 1).copied() == Some('\n') {
                        i += 1; // leave the newline for line accounting
                    } else {
                        cur.code.push(' ');
                        i += 2;
                    }
                }
                '"' => {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                }
                _ => {
                    cur.code.push(' ');
                    i += 1;
                }
            },
            State::Str {
                raw_hashes: Some(h),
            } => {
                if c == '"' && closes_raw_string(&chars, i, h) {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1 + h as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => match c {
                '\\' => {
                    cur.code.push(' ');
                    cur.code.push(' ');
                    i += 2;
                }
                '\'' => {
                    cur.code.push('\'');
                    state = State::Normal;
                    i += 1;
                }
                _ => {
                    cur.code.push(' ');
                    i += 1;
                }
            },
        }
    }
    lines.push(cur);

    mark_test_regions(&mut lines);
    Scanned { lines }
}

/// `r"`, `r#"`, `br"`, `br#"`… — a raw (byte) string opener at `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`attr"` is not raw).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j).copied() != Some('r') {
            return false;
        }
    }
    if chars.get(j).copied() != Some('r') {
        return false;
    }
    j += 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

/// Number of `#`s and total chars consumed by the raw-string opener.
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0u32;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // '"'
    (hashes, j - i)
}

/// Does the `"` at `i` close a raw string with `h` hashes?
fn closes_raw_string(chars: &[char], i: usize, h: u32) -> bool {
    (1..=h as usize).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Distinguish a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1).copied() {
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || c == '_' => {
            // `'a'` is a char, `'a` / `'static` are lifetimes.
            chars.get(i + 2).copied() == Some('\'')
        }
        Some('\'') => false, // `''` — malformed, treat as lifetime-ish
        Some(_) => true,     // `'('`, `' '`, …
        None => false,
    }
}

/// Mark lines inside `#[cfg(test)]`-gated items (normally `mod tests`).
///
/// After a `#[cfg(test)]` attribute line, the gated item runs to the
/// close of the first `{`-brace group that opens after it (or to the
/// first `;` if the item has no body).
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]")
            || lines[i].code.contains("#[cfg(all(test")
            || lines[i].code.contains("#[cfg(any(test")
        {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                lines[j].in_test = true;
                for c in lines[j].code.chars().skip(if j == i {
                    // Only look after the attribute on its own line.
                    lines[i]
                        .code
                        .find("#[cfg(")
                        .map(|p| p + 1)
                        .unwrap_or_default()
                } else {
                    0
                }) {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened => {
                            // Attribute gates a braceless item.
                            depth = 0;
                            opened = true;
                        }
                        _ => {}
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Whether `code` contains `word` as a standalone token (not as part of
/// a longer identifier).
pub(crate) fn has_token(code: &str, word: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan("let x = \"unsafe\"; // unsafe in comment\nunsafe {}\n");
        assert!(!has_token(&s.lines[0].code, "unsafe"));
        assert!(s.lines[0].comment.contains("unsafe in comment"));
        assert!(has_token(&s.lines[1].code, "unsafe"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let x = r#\"unsafe \" still\"#; let y = unsafe_marker;\n");
        assert!(!has_token(&s.lines[0].code, "unsafe"));
        assert!(s.lines[0].code.contains("unsafe_marker"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x } // SAFETY: none\nlet c = 'x'; let d = '\\n'; unsafe {}\n");
        assert!(s.lines[0].comment.contains("SAFETY"));
        assert!(has_token(&s.lines[1].code, "unsafe"));
        assert!(!s.lines[1].code.contains('x'));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ code_here\n");
        assert!(s.lines[0].code.contains("code_here"));
        assert!(s.lines[0].comment.contains("outer"));
        assert!(!s.lines[0].code.contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let s = scan(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[1].in_test);
        assert!(s.lines[2].in_test);
        assert!(s.lines[3].in_test);
        assert!(s.lines[4].in_test);
        assert!(!s.lines[5].in_test);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("unsafe_fn()", "unsafe"));
        assert!(!has_token("my_unsafe", "unsafe"));
        assert!(has_token("(unsafe)", "unsafe"));
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let s = scan("let x = \"a\\\"unsafe\"; unsafe {}\n");
        let code = &s.lines[0].code;
        // Only the trailing real `unsafe` survives as code.
        assert!(has_token(code, "unsafe"));
        assert_eq!(code.matches("unsafe").count(), 1);
    }
}

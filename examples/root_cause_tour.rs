//! A guided tour of the paper's seven root causes.
//!
//! Builds small matched workloads and, for each root cause, measures
//! the generalized engine before and after applying that cause's fix —
//! a narrated, minutes-scale version of the `ablation_root_causes`
//! bench.
//!
//! ```text
//! cargo run --release --example root_cause_tour
//! ```

use std::time::Instant;
use vdb_core::datagen::gaussian;
use vdb_core::generalized::{
    GeneralizedOptions, PaseHnswIndex, PaseIndex, PaseIvfFlatIndex, PaseIvfPqIndex,
};
use vdb_core::storage::{BufferManager, DiskManager, PageSize};
use vdb_core::vecmath::{HnswParams, IvfParams, PqParams, VectorSet};
use vdb_core::RootCause;

const DIM: usize = 96;
const N: usize = 6_000;
const K: usize = 50;

fn bm_for(n_pages: usize) -> BufferManager {
    BufferManager::new(
        std::sync::Arc::new(DiskManager::new(PageSize::Size8K)),
        n_pages,
    )
}

fn flat_query_ms(
    opts: GeneralizedOptions,
    params: IvfParams,
    data: &VectorSet,
    queries: &VectorSet,
) -> f64 {
    let bm = bm_for(4096);
    let (idx, _) = PaseIvfFlatIndex::build(opts, params, &bm, data).unwrap();
    let t0 = Instant::now();
    for q in queries.iter() {
        idx.search_with_nprobe(&bm, q, K, params.nprobe).unwrap();
    }
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

fn main() {
    let data = gaussian::generate(DIM, N, 32, 99);
    let queries = gaussian::generate(DIM, 30, 32, 100);
    let params = IvfParams {
        clusters: 77,
        sample_ratio: 0.2,
        nprobe: 20,
    };
    let base = GeneralizedOptions::default();

    println!("The seven root causes (paper §IX-B), measured:\n");

    // RC#1 — SGEMM in the adding phase.
    {
        let rc = RootCause::Rc1Sgemm;
        let bm = bm_for(4096);
        let t0 = Instant::now();
        PaseIvfFlatIndex::build(base, params, &bm, &data).unwrap();
        let slow = t0.elapsed();
        let bm = bm_for(4096);
        let t1 = Instant::now();
        PaseIvfFlatIndex::build(rc.apply_fix(base), params, &bm, &data).unwrap();
        let fast = t1.elapsed();
        println!("{} {}", rc.tag(), rc.description());
        println!("   IVF_FLAT build: {slow:.2?} -> {fast:.2?}\n");
    }

    // RC#2 / RC#5 / RC#6 — search-path fixes on IVF_FLAT.
    for rc in [
        RootCause::Rc2MemoryManagement,
        RootCause::Rc5Kmeans,
        RootCause::Rc6HeapSize,
    ] {
        let before = flat_query_ms(base, params, &data, &queries);
        let after = flat_query_ms(rc.apply_fix(base), params, &data, &queries);
        println!("{} {}", rc.tag(), rc.description());
        println!("   IVF_FLAT query: {before:.3} ms -> {after:.3} ms\n");
    }

    // RC#3 — parallel search with 4 threads.
    {
        let rc = RootCause::Rc3Parallelism;
        let before = flat_query_ms(
            GeneralizedOptions { threads: 4, ..base },
            params,
            &data,
            &queries,
        );
        let after = flat_query_ms(
            GeneralizedOptions {
                threads: 4,
                ..rc.apply_fix(base)
            },
            params,
            &data,
            &queries,
        );
        println!("{} {}", rc.tag(), rc.description());
        println!("   IVF_FLAT 4-thread query: {before:.3} ms (locked global heap) -> {after:.3} ms (local heaps)\n");
    }

    // RC#4 — HNSW page layout.
    {
        let rc = RootCause::Rc4PageLayout;
        let hparams = HnswParams {
            bnn: 8,
            efb: 24,
            efs: 40,
        };
        let small = gaussian::generate(DIM, 2_000, 16, 5);
        let bm = bm_for(8192);
        let (wide, _) = PaseHnswIndex::build(base, hparams, &bm, &small).unwrap();
        let wide_mb = wide.size_bytes(&bm) as f64 / 1e6;
        let bm2 = bm_for(8192);
        let (packed, _) = PaseHnswIndex::build(rc.apply_fix(base), hparams, &bm2, &small).unwrap();
        let packed_mb = packed.size_bytes(&bm2) as f64 / 1e6;
        println!("{} {}", rc.tag(), rc.description());
        println!("   HNSW index size: {wide_mb:.1} MB -> {packed_mb:.1} MB\n");
    }

    // RC#7 — PQ precomputed table.
    {
        let rc = RootCause::Rc7PqTable;
        let pq = PqParams { m: 12, cpq: 128 };
        let run = |opts: GeneralizedOptions| {
            let bm = bm_for(4096);
            let (idx, _) = PaseIvfPqIndex::build(opts, params, pq, &bm, &data).unwrap();
            let t0 = Instant::now();
            for q in queries.iter() {
                idx.search_with_nprobe(&bm, q, K, params.nprobe).unwrap();
            }
            t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
        };
        let before = run(base);
        let after = run(rc.apply_fix(base));
        println!("{} {}", rc.tag(), rc.description());
        println!("   IVF_PQ query: {before:.3} ms -> {after:.3} ms\n");
    }

    println!(
        "Conclusion (paper §IX): every gap above closed without leaving the \
         relational architecture — no fundamental limitation, just engineering."
    );
}

//! Product recommendation over SQL — "one-size-fits-all" in action.
//!
//! A shop stores product embeddings (item2vec-style) in a plain
//! relational table, indexes them with IVF_FLAT through `CREATE
//! INDEX`, and answers "customers who liked X..." queries with ORDER
//! BY + LIMIT. Demonstrates the generalized-database value proposition
//! the paper's introduction lays out: vector search without leaving
//! SQL, plus per-query tuning through the `::PASE` literal.
//!
//! ```text
//! cargo run --release --example product_recommendation
//! ```

use vdb_core::datagen::gaussian;
use vdb_core::sql::Database;

const DIM: usize = 64;
const N_PRODUCTS: usize = 5_000;

fn main() {
    let mut db = Database::in_memory();
    db.execute(&format!("CREATE TABLE products (id int, vec float[{DIM}])"))
        .unwrap();

    // Load the catalog: product ids 1000.. with item2vec-style
    // embeddings (clustered: similar products embed nearby).
    println!("loading {N_PRODUCTS} product embeddings...");
    let embeddings = gaussian::generate(DIM, N_PRODUCTS, 40, 7);
    let ids: Vec<i64> = (0..N_PRODUCTS as i64).map(|i| 1000 + i).collect();
    db.bulk_load("products", &ids, &embeddings).unwrap();

    // Index it the PASE way. sample_ratio is in thousandths.
    println!("creating IVF_FLAT index...");
    db.execute(
        "CREATE INDEX product_idx ON products USING ivfflat(vec) \
         WITH (clusters = 70, sample_ratio = 200, distance_type = 0)",
    )
    .unwrap();

    // A customer just viewed product 1042; recommend similar items.
    let viewed = 1042usize;
    let viewed_vec: Vec<String> = embeddings
        .row(viewed - 1000)
        .iter()
        .map(|x| format!("{x}"))
        .collect();

    // Fast query: default nprobe via the index.
    let quick = db
        .execute(&format!(
            "SELECT id, distance FROM products ORDER BY vec <-> '{}' LIMIT 6",
            viewed_vec.join(",")
        ))
        .unwrap();
    println!("\nrecommendations for viewer of product {viewed} (default nprobe):");
    for row in &quick.rows {
        println!("  {:?}", row);
    }
    assert_eq!(
        quick.ids()[0] as usize,
        viewed,
        "the viewed product itself ranks first"
    );

    // Accuracy-critical query: crank nprobe per query via ::PASE.
    let thorough = db
        .execute(&format!(
            "SELECT id FROM products ORDER BY vec <-> '{}:70'::PASE LIMIT 6",
            viewed_vec.join(",")
        ))
        .unwrap();
    println!(
        "\nwith nprobe=70 (exhaustive probing): {:?}",
        thorough.ids()
    );

    // The thorough result is exact: verify against a sequential scan.
    db.execute("DROP INDEX product_idx").unwrap();
    let exact = db
        .execute(&format!(
            "SELECT id FROM products ORDER BY vec <-> '{}' LIMIT 6",
            viewed_vec.join(",")
        ))
        .unwrap();
    assert_eq!(
        thorough.ids(),
        exact.ids(),
        "full probing must equal exact scan"
    );
    println!("\nok: index answers match the exact scan under full probing.");
}

//! Image-similarity search — the paper's motivating workload, on both
//! engines.
//!
//! Simulates a photo library whose images were embedded by a CNN
//! (Deep1M-style 256-d vectors), builds an HNSW index in the
//! specialized engine *and* in the generalized (PostgreSQL-shaped)
//! engine with identical parameters, and compares recall and latency —
//! a miniature of the paper's Figure 17 on a single scenario.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use std::time::Instant;
use vdb_core::datagen::{brute_force_topk, gaussian, recall_at_k};
use vdb_core::generalized::{GeneralizedOptions, PaseHnswIndex};
use vdb_core::specialized::{HnswIndex, SpecializedOptions, VectorIndex};
use vdb_core::storage::{BufferManager, DiskManager, PageSize};
use vdb_core::vecmath::{HnswParams, Metric};

const DIM: usize = 256; // Deep-style CNN embeddings
const N_IMAGES: usize = 8_000;
const N_QUERIES: usize = 50;
const K: usize = 10;

fn main() {
    println!("generating {N_IMAGES} simulated image embeddings ({DIM}-d)...");
    let (library, queries) = gaussian::generate_with_queries(DIM, N_IMAGES, N_QUERIES, 64, 2024);
    let truth = brute_force_topk(&library, &queries, Metric::L2, K, 4);

    let params = HnswParams {
        bnn: 16,
        efb: 40,
        efs: 64,
    };

    // Specialized engine (the Faiss stand-in).
    let t0 = Instant::now();
    let (fast_idx, _) = HnswIndex::build(SpecializedOptions::default(), params, &library);
    println!("specialized HNSW built in {:.2?}", t0.elapsed());

    // Generalized engine (the PASE stand-in) — same graph parameters,
    // but every access goes through the buffer manager.
    let disk = std::sync::Arc::new(DiskManager::new(PageSize::Size8K));
    let bm = BufferManager::new(disk, N_IMAGES * 2 + 2048);
    let t1 = Instant::now();
    let (pase_idx, _) = PaseHnswIndex::build(GeneralizedOptions::default(), params, &bm, &library)
        .expect("generalized build");
    println!(
        "generalized HNSW built in {:.2?} (same parameters)",
        t1.elapsed()
    );

    // Query both, measure recall and latency.
    let mut fast_results = Vec::new();
    let t2 = Instant::now();
    for q in queries.iter() {
        fast_results.push(
            fast_idx
                .search(q, K)
                .iter()
                .map(|n| n.id)
                .collect::<Vec<_>>(),
        );
    }
    let fast_lat = t2.elapsed() / N_QUERIES as u32;

    let mut pase_results = Vec::new();
    let t3 = Instant::now();
    for q in queries.iter() {
        let found = pase_idx
            .search_with_ef(&bm, q, K, params.efs)
            .expect("search");
        pase_results.push(found.iter().map(|n| n.id).collect::<Vec<_>>());
    }
    let pase_lat = t3.elapsed() / N_QUERIES as u32;

    let fast_recall = recall_at_k(&truth, &fast_results);
    let pase_recall = recall_at_k(&truth, &pase_results);

    println!();
    println!("                 recall@{K}    avg latency");
    println!("specialized        {fast_recall:.3}      {fast_lat:.2?}");
    println!("generalized        {pase_recall:.3}      {pase_lat:.2?}");
    println!();
    println!(
        "same algorithm, same parameters -> comparable recall; the latency gap \
         is the relational substrate (RC#2), factor {:.1}x here.",
        pase_lat.as_secs_f64() / fast_lat.as_secs_f64()
    );

    assert!(
        fast_recall > 0.8,
        "specialized recall {fast_recall} too low"
    );
    assert!(
        pase_recall > 0.8,
        "generalized recall {pase_recall} too low"
    );
}

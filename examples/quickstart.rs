//! Quickstart: the paper's §II-E SQL workflow, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vdb_core::sql::{Database, Value};

fn main() {
    let mut db = Database::in_memory();

    // 1. A relational table with a vector column (paper §II-E).
    db.execute("CREATE TABLE t (id int, vec float[3])").unwrap();

    // 2. Vector data goes in like any other attribute.
    db.execute(
        "INSERT INTO t VALUES \
         (1, '{0.10, 0.20, 0.30}'), \
         (2, '{0.90, 0.10, 0.00}'), \
         (3, '{0.11, 0.21, 0.29}'), \
         (4, '{0.50, 0.50, 0.50}'), \
         (5, '{0.12, 0.19, 0.31}')",
    )
    .unwrap();

    // 3. An IVF_FLAT index, PASE-style options: distance_type 0 is
    //    Euclidean, sample_ratio is in thousandths (500 -> 0.5).
    db.execute(
        "CREATE INDEX ivfflat_idx ON t USING ivfflat(vec) \
         WITH (clusters = 2, sample_ratio = 500, distance_type = 0)",
    )
    .unwrap();

    // 4. The paper's query shape: top-k by similarity, with per-query
    //    search knobs in the ::PASE literal (here nprobe = 2).
    let result = db
        .execute("SELECT id, distance FROM t ORDER BY vec <-> '0.1,0.2,0.3:2'::PASE ASC LIMIT 3")
        .unwrap();

    println!("top-3 neighbors of [0.1, 0.2, 0.3]:");
    for row in &result.rows {
        let (Value::Int(id), Value::Float(d)) = (&row[0], &row[1]) else {
            unreachable!("projection is (id, distance)");
        };
        println!("  id {id}  distance {d:.6}");
    }

    assert_eq!(result.ids()[0], 1, "exact match must rank first");
    println!("ok: vector search through plain SQL.");
}

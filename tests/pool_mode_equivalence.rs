//! Property test: the buffer-pool mode is invisible to query answers.
//!
//! The sharded pool is a concurrency optimisation — it must never
//! change what an index returns. For arbitrary seeded datasets, all
//! four generalized index types built and searched over a global-lock
//! pool and over a 4-shard sharded pool (with eviction pressure in
//! both) produce bit-identical results. Run under `VDB_FORCE_SCALAR=1`
//! as well: kernel dispatch and pool mode must stay orthogonal.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_core::datagen::gaussian;
use vdb_core::generalized::{
    GeneralizedOptions, PaseHnswIndex, PaseIvfFlatIndex, PaseIvfPqIndex, PgVectorIvfFlatIndex,
};
use vdb_core::storage::{BufferManager, BufferPoolMode, DiskManager, PageSize};
use vdb_core::vecmath::{HnswParams, IvfParams, Neighbor, PqParams, VectorSet};

fn pool(mode: BufferPoolMode) -> BufferManager {
    let disk = Arc::new(DiskManager::new(PageSize::Size8K));
    match mode {
        BufferPoolMode::GlobalLock => BufferManager::new(disk, 512),
        // Explicit 4-shard geometry so the partitioned code paths run
        // regardless of the host's core count.
        BufferPoolMode::Sharded => BufferManager::sharded_with_shards(disk, 512, 4),
    }
}

/// Build all four index types over `data` on one pool and answer the
/// same queries with each.
fn answers(mode: BufferPoolMode, data: &VectorSet, queries: &[usize]) -> Vec<Vec<Vec<Neighbor>>> {
    let bm = pool(mode);
    let opts = GeneralizedOptions::default();
    let ivf = IvfParams {
        clusters: 8,
        sample_ratio: 0.5,
        nprobe: 4,
    };
    let pq = PqParams { m: 4, cpq: 16 };
    let hnsw = HnswParams::default();

    let (flat, _) = PaseIvfFlatIndex::build(opts, ivf, &bm, data).unwrap();
    let (ivfpq, _) = PaseIvfPqIndex::build(opts, ivf, pq, &bm, data).unwrap();
    let (graph, _) = PaseHnswIndex::build(opts, hnsw, &bm, data).unwrap();
    let (pgv, _) = PgVectorIvfFlatIndex::build(opts, ivf, &bm, data).unwrap();

    queries
        .iter()
        .map(|&qi| {
            let q = data.row(qi % data.len());
            vec![
                flat.search_with_nprobe(&bm, q, 10, 4).unwrap(),
                ivfpq.search_with_nprobe(&bm, q, 10, 4).unwrap(),
                graph.search_with_ef(&bm, q, 10, 64).unwrap(),
                pgv.search_with_nprobe(&bm, q, 10, 4).unwrap(),
            ]
        })
        .collect()
}

proptest! {
    // Each case builds eight indexes; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_pool_answers_equal_global_lock(
        seed in 0u64..1_000,
        dim in prop_oneof![Just(8usize), Just(16usize)],
        n in 300usize..600,
        queries in proptest::collection::vec(0usize..600, 3),
    ) {
        let data = gaussian::generate(dim, n, 8, seed);
        let global = answers(BufferPoolMode::GlobalLock, &data, &queries);
        let sharded = answers(BufferPoolMode::Sharded, &data, &queries);
        // Index-by-index so a mismatch names the engine.
        for (qi, (g, s)) in global.iter().zip(&sharded).enumerate() {
            for (t, name) in ["ivfflat", "ivfpq", "hnsw", "pgvector"].iter().enumerate() {
                prop_assert_eq!(&g[t], &s[t], "query {} through {}", qi, name);
            }
        }
    }
}

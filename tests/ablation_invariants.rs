//! Correctness invariants of the root-cause fixes: every fix must
//! change *performance characteristics only*. Result sets (or recall)
//! are preserved, and the deterministic improvements (index size) are
//! real.

use std::sync::Arc;
use vdb_core::datagen::gaussian;
use vdb_core::generalized::{
    GeneralizedOptions, PaseHnswIndex, PaseIndex, PaseIvfFlatIndex, PaseIvfPqIndex,
};
use vdb_core::storage::{BufferManager, DiskManager, PageSize};
use vdb_core::vecmath::{HnswParams, IvfParams, PqParams};
use vdb_core::RootCause;

fn bm(pages: usize) -> BufferManager {
    BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), pages)
}

/// Fixes that must not change IVF_FLAT answers at all (same centroids,
/// same candidates, same metric): RC#2, RC#3, RC#6.
#[test]
fn result_preserving_fixes_preserve_results() {
    let data = gaussian::generate(16, 1_000, 8, 55);
    let params = IvfParams {
        clusters: 10,
        sample_ratio: 0.5,
        nprobe: 5,
    };
    let base = GeneralizedOptions::default();
    let pool = bm(4096);
    let (reference, _) = PaseIvfFlatIndex::build(base, params, &pool, &data).unwrap();

    for rc in [
        RootCause::Rc2MemoryManagement,
        RootCause::Rc3Parallelism,
        RootCause::Rc6HeapSize,
    ] {
        // RC#2 flips the distance kernel too; to compare answers keep
        // the kernel fixed and only flip the orthogonal switch.
        let mut opts = rc.apply_fix(base);
        opts.distance = base.distance;
        let (fixed, _) = PaseIvfFlatIndex::build(opts, params, &pool, &data).unwrap();
        for qi in [1usize, 500, 999] {
            let q = data.row(qi);
            assert_eq!(
                reference.search_with_nprobe(&pool, q, 10, 5).unwrap(),
                fixed.search_with_nprobe(&pool, q, 10, 5).unwrap(),
                "{} changed results at query {qi}",
                rc.tag()
            );
        }
    }
}

/// RC#1 (GEMM assignment) must produce the same bucket assignment as
/// the scalar loop — it is the same argmin, computed batched.
#[test]
fn rc1_assignment_is_equivalent() {
    let data = gaussian::generate(24, 1_200, 10, 66);
    let params = IvfParams {
        clusters: 12,
        sample_ratio: 0.4,
        nprobe: 6,
    };
    let base = GeneralizedOptions::default();
    let pool = bm(4096);
    let (scalar, _) = PaseIvfFlatIndex::build(base, params, &pool, &data).unwrap();
    let (gemm, _) =
        PaseIvfFlatIndex::build(RootCause::Rc1Sgemm.apply_fix(base), params, &pool, &data).unwrap();
    assert_eq!(scalar.bucket_sizes(), gemm.bucket_sizes());
}

/// RC#4 (packed layout) shrinks the HNSW index substantially without
/// changing search results.
#[test]
fn rc4_shrinks_hnsw_without_changing_answers() {
    let data = gaussian::generate(16, 800, 8, 77);
    let params = HnswParams {
        bnn: 8,
        efb: 24,
        efs: 48,
    };
    let base = GeneralizedOptions::default();
    let pool = bm(8192);
    let (wide, _) = PaseHnswIndex::build(base, params, &pool, &data).unwrap();
    let (packed, _) = PaseHnswIndex::build(
        RootCause::Rc4PageLayout.apply_fix(base),
        params,
        &pool,
        &data,
    )
    .unwrap();

    let wide_bytes = wide.size_bytes(&pool);
    let packed_bytes = packed.size_bytes(&pool);
    assert!(
        wide_bytes > 3 * packed_bytes,
        "packed layout should shrink the index: {wide_bytes} vs {packed_bytes}"
    );
    for qi in [3usize, 400, 799] {
        let q = data.row(qi);
        assert_eq!(
            wide.search_with_ef(&pool, q, 5, 48).unwrap(),
            packed.search_with_ef(&pool, q, 5, 48).unwrap(),
            "query {qi}"
        );
    }
}

/// RC#7 (optimized PQ table) must rank candidates identically up to
/// floating-point noise; verify id sets match.
#[test]
fn rc7_table_mode_preserves_rankings() {
    let data = gaussian::generate(32, 1_000, 8, 88);
    let params = IvfParams {
        clusters: 8,
        sample_ratio: 0.5,
        nprobe: 8,
    };
    let pq = PqParams { m: 8, cpq: 64 };
    let base = GeneralizedOptions::default();
    let pool = bm(4096);
    let (slow, _) = PaseIvfPqIndex::build(base, params, pq, &pool, &data).unwrap();
    let (fast, _) = PaseIvfPqIndex::build(
        RootCause::Rc7PqTable.apply_fix(base),
        params,
        pq,
        &pool,
        &data,
    )
    .unwrap();
    for qi in [0usize, 77, 999] {
        let q = data.row(qi);
        let a: Vec<u64> = slow
            .search_with_nprobe(&pool, q, 10, 8)
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect();
        let b: Vec<u64> = fast
            .search_with_nprobe(&pool, q, 10, 8)
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(a, b, "query {qi}");
    }
}

/// Applying all seven fixes still returns exact results under full
/// probing — the "future system" is correct, not just fast.
#[test]
fn fully_fixed_engine_is_still_exact() {
    let data = gaussian::generate(16, 900, 8, 99);
    let params = IvfParams {
        clusters: 9,
        sample_ratio: 0.5,
        nprobe: 9,
    };
    let pool = bm(4096);
    let (fixed, _) = PaseIvfFlatIndex::build(RootCause::all_fixed(), params, &pool, &data).unwrap();
    for qi in [10usize, 450, 899] {
        let q = data.row(qi);
        let res = fixed.search_with_nprobe(&pool, q, 1, 9).unwrap();
        assert_eq!(res[0].id, qi as u64, "query {qi}");
        assert_eq!(res[0].distance, 0.0);
    }
}

//! Always-on smoke gate over the concurrency models.
//!
//! The full exploration runs in the CI loom job (`RUSTFLAGS="--cfg
//! vdb_loom"`); this gate runs in the ordinary test suite so a
//! regression in a model, a scenario, or the explorer itself is caught
//! on every PR, not only when the loom job runs. `LOOM_MAX_PREEMPTIONS`
//! (default 2 here) bounds the schedule space — the replicas' retry
//! loops make the unbounded space infinite, and 2 preemptions already
//! reach every seeded bug.

use vdb_core::decoupled::models;
use vdb_core::storage::model::{scenarios, Config};

fn cfg() -> Config {
    Config::from_env_or(Some(2))
}

#[test]
fn pool_scenarios_hold() {
    assert!(scenarios::pool_pin_evict_latch(cfg()) >= 1);
    assert!(scenarios::pool_dirty_writeback(cfg()) >= 1);
    assert!(scenarios::pool_stats_independent(cfg()) >= 1);
}

#[test]
fn changelog_scenarios_hold() {
    assert!(models::changelog_exactly_once(cfg()) >= 1);
    assert!(models::changelog_refresh_barrier(cfg()) >= 1);
    assert!(models::changelog_bounded_staleness(cfg()) >= 1);
}

#[test]
fn replicas_explore_and_catch_seeded_bugs() {
    // The replicas use model primitives directly, so they explore a
    // branching space in every build — and the seeded bugs must fail.
    assert!(scenarios::mini_pool_model(cfg(), true) > 1);
    assert!(models::mini_log_model(cfg(), true) > 1);

    let stale_read = std::panic::catch_unwind(|| {
        scenarios::mini_pool_model(cfg(), false);
    });
    assert!(stale_read.is_err(), "seeded revalidation bug not caught");

    let double_apply = std::panic::catch_unwind(|| {
        models::mini_log_model(cfg(), false);
    });
    assert!(double_apply.is_err(), "seeded cursor bug not caught");
}

//! Concurrency stress for the decoupled engine: writers append to the
//! change log while readers search, in both consistency modes. All
//! mutation goes through `&self`, so the index is shared across
//! threads directly; the lock-order tracker (strict-invariants builds)
//! audits every acquisition underneath.

use std::sync::atomic::{AtomicBool, Ordering};
use vdb_core::datagen::gaussian;
use vdb_core::decoupled::{Consistency, DecoupledIndex, NativeParams};
use vdb_core::specialized::SpecializedOptions;
use vdb_core::storage::Tid;
use vdb_core::vecmath::Neighbor;

const DIM: usize = 8;
const BASE: usize = 200;
const WRITERS: usize = 2;
const PER_WRITER: usize = 120;

fn tid_of(i: usize) -> Tid {
    Tid::new((i / 50) as u32, (i % 50) as u16)
}

fn build(mode: Consistency) -> DecoupledIndex {
    let data = gaussian::generate(DIM, BASE, 4, 7);
    let ids: Vec<u64> = (0..BASE as u64).collect();
    let tids: Vec<Tid> = (0..BASE).map(tid_of).collect();
    DecoupledIndex::build(
        SpecializedOptions::default(),
        NativeParams::Flat,
        mode,
        &ids,
        &tids,
        &data,
    )
}

/// The vector writer `w` inserts as its `j`-th row: far from the base
/// gaussian blob and unique per (w, j), so the final nearest-neighbor
/// probes have unambiguous answers.
fn far_vector(w: usize, j: usize) -> [f32; DIM] {
    let mut v = [1_000.0f32; DIM];
    v[0] += (w * PER_WRITER + j) as f32;
    v
}

fn writer_id(w: usize, j: usize) -> u64 {
    (BASE + w * PER_WRITER + j) as u64
}

/// A result list must always be well-formed, no matter what races in:
/// sorted by distance, no duplicates, ids from the known universe.
fn check_well_formed(res: &[Neighbor], k: usize) {
    assert!(res.len() <= k, "got {} results for k={k}", res.len());
    assert!(
        res.windows(2).all(|w| w[0].distance <= w[1].distance),
        "results not sorted by distance"
    );
    let max_id = (BASE + WRITERS * PER_WRITER) as u64;
    for (i, n) in res.iter().enumerate() {
        assert!(n.id < max_id, "unknown id {}", n.id);
        assert!(
            res[..i].iter().all(|m| m.id != n.id),
            "duplicate id {} in one result list",
            n.id
        );
    }
}

fn run_stress(mode: Consistency) -> DecoupledIndex {
    let ix = build(mode);
    let query = gaussian::generate(DIM, 1, 1, 99);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ix = &ix;
                s.spawn(move || {
                    for j in 0..PER_WRITER {
                        ix.insert(
                            writer_id(w, j),
                            tid_of(BASE + w * PER_WRITER + j),
                            &far_vector(w, j),
                        );
                    }
                })
            })
            .collect();
        for _ in 0..2 {
            let (ix, stop, q) = (&ix, &stop, query.row(0));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let res = ix.search(q, 5);
                    check_well_formed(&res, 5);
                    assert!(!res.is_empty(), "base rows must always be visible");
                }
            });
        }
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    ix
}

#[test]
fn bounded_mode_concurrent_inserts_respect_the_staleness_bound() {
    const BOUND: u64 = 16;
    let ix = run_stress(Consistency::Bounded(BOUND));

    // Quiescent now: one read-path drain must restore the bound…
    let probe = [0.0f32; DIM];
    ix.search(&probe, 1);
    assert!(
        ix.lag() <= BOUND,
        "lag {} exceeds bound {BOUND} after a quiescent search",
        ix.lag()
    );
    // …and the barrier makes every write visible.
    ix.refresh();
    assert_eq!(ix.lag(), 0);
    assert_eq!(ix.len(), BASE + WRITERS * PER_WRITER);
    for (w, j) in [(0, 0), (WRITERS - 1, PER_WRITER - 1)] {
        let res = ix.search(&far_vector(w, j), 1);
        assert_eq!(res[0].id, writer_id(w, j));
        assert_eq!(res[0].distance, 0.0);
    }
}

#[test]
fn sync_mode_concurrent_inserts_are_all_visible_at_join() {
    let ix = run_stress(Consistency::Sync);

    // Sync mode replays at write time: once the writers have joined,
    // the last insert's drain has applied everything that races could
    // have left behind.
    assert_eq!(ix.lag(), 0, "sync mode must never leave the log behind");
    assert_eq!(ix.len(), BASE + WRITERS * PER_WRITER);
    let res = ix.search(&far_vector(1, 7), 1);
    assert_eq!(res[0].id, writer_id(1, 7));
}

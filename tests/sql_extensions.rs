//! Integration tests for the SQL extensions: EXPLAIN and DELETE with
//! index visibility checks.

use vdb_core::datagen::gaussian;
use vdb_core::sql::{Database, SqlError, Value};

fn loaded_db() -> Database {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[8])").unwrap();
    let data = gaussian::generate(8, 400, 4, 77);
    let ids: Vec<i64> = (0..400).collect();
    db.bulk_load("t", &ids, &data).unwrap();
    db
}

#[test]
fn explain_shows_seq_scan_without_index() {
    let mut db = loaded_db();
    let res = db
        .execute("EXPLAIN SELECT id FROM t ORDER BY vec <-> '1,1,1,1,1,1,1,1' LIMIT 5")
        .unwrap();
    assert_eq!(res.columns, vec!["plan"]);
    let Value::Text(plan) = &res.rows[0][0] else {
        panic!("plan not text")
    };
    assert!(plan.contains("Seq Scan"), "{plan}");
}

#[test]
fn explain_switches_to_index_scan_after_create_index() {
    let mut db = loaded_db();
    db.execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 8, sample_ratio = 500)")
        .unwrap();
    let res = db
        .execute("EXPLAIN SELECT id FROM t ORDER BY vec <-> '1,1,1,1,1,1,1,1' LIMIT 5")
        .unwrap();
    let Value::Text(plan) = &res.rows[0][0] else {
        panic!("plan not text")
    };
    assert!(plan.contains("Index Scan using i (ivfflat)"), "{plan}");
    // A mismatched operator still plans a seq scan.
    let res = db
        .execute("EXPLAIN SELECT id FROM t ORDER BY vec <=> '1,1,1,1,1,1,1,1' LIMIT 5")
        .unwrap();
    let Value::Text(plan) = &res.rows[0][0] else {
        panic!("plan not text")
    };
    assert!(plan.contains("Seq Scan"), "{plan}");
}

#[test]
fn explain_point_lookup() {
    let mut db = loaded_db();
    let res = db.execute("EXPLAIN SELECT id FROM t WHERE id = 7").unwrap();
    let Value::Text(plan) = &res.rows[0][0] else {
        panic!("plan not text")
    };
    assert!(plan.contains("filter: id = 7"), "{plan}");
}

#[test]
fn delete_removes_row_from_seq_scan() {
    let mut db = loaded_db();
    db.execute("DELETE FROM t WHERE id = 42").unwrap();
    let res = db.execute("SELECT id FROM t WHERE id = 42").unwrap();
    assert!(res.rows.is_empty());
    // Deleting again errors.
    let err = db.execute("DELETE FROM t WHERE id = 42").unwrap_err();
    assert!(matches!(err, SqlError::Semantic(_)));
}

#[test]
fn delete_is_invisible_through_index_scans() {
    let mut db = loaded_db();
    db.execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 8, sample_ratio = 500)")
        .unwrap();
    // Find the current nearest to some query, then delete it.
    let res = db
        .execute("SELECT id FROM t ORDER BY vec <-> '0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5:8' LIMIT 1")
        .unwrap();
    let nearest = res.ids()[0];
    db.execute(&format!("DELETE FROM t WHERE id = {nearest}"))
        .unwrap();
    // The visibility check must keep the dead row out of results even
    // though the index still holds its entry.
    let res = db
        .execute("SELECT id FROM t ORDER BY vec <-> '0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5:8' LIMIT 5")
        .unwrap();
    assert!(
        !res.ids().contains(&nearest),
        "deleted id {nearest} leaked: {:?}",
        res.ids()
    );
}

#[test]
fn delete_then_reinsert_same_id_is_visible_again() {
    let mut db = loaded_db();
    db.execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 8, sample_ratio = 500)")
        .unwrap();
    db.execute("DELETE FROM t WHERE id = 10").unwrap();
    db.execute("INSERT INTO t VALUES (10, '{9,9,9,9,9,9,9,9}')")
        .unwrap();
    let res = db
        .execute("SELECT id FROM t ORDER BY vec <-> '9,9,9,9,9,9,9,9:8' LIMIT 1")
        .unwrap();
    assert_eq!(res.ids(), vec![10]);
}

#[test]
fn explain_rejects_non_select() {
    let mut db = loaded_db();
    assert!(db.execute("EXPLAIN DROP TABLE t").is_err());
}

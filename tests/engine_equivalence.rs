//! The paper's methodological premise, verified: the two engines run
//! the same algorithms with the same parameters, so their *answers*
//! coincide wherever the algorithm is deterministic, and their recall
//! matches where it is approximate.

use std::sync::Arc;
use vdb_core::datagen::{brute_force_topk, gaussian, recall_at_k};
use vdb_core::generalized::{GeneralizedOptions, PaseHnswIndex, PaseIvfFlatIndex};
use vdb_core::specialized::{HnswIndex, IvfFlatIndex, SpecializedOptions, VectorIndex};
use vdb_core::storage::{BufferManager, DiskManager, PageSize};
use vdb_core::vecmath::{
    DistanceKernel, HnswParams, IvfParams, KmeansFlavor, Metric, TopKStrategy,
};

fn bm(pages: usize) -> BufferManager {
    BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), pages)
}

/// With the same centroids and full probing, both engines' IVF_FLAT
/// must return the *identical* top-k (same candidates, same metric).
#[test]
fn ivfflat_same_centroids_same_results() {
    let data = gaussian::generate(24, 1_500, 12, 3);
    let params = IvfParams {
        clusters: 12,
        sample_ratio: 0.3,
        nprobe: 12,
    };

    // Build the generalized index first, then transplant its centroids
    // into the specialized engine (the paper's Faiss* trick in reverse).
    let bm = bm(4096);
    // Use the optimized kernel on both sides so distances are
    // bit-identical.
    let gen_opts = GeneralizedOptions {
        distance: DistanceKernel::Optimized,
        topk: TopKStrategy::SizeK,
        ..Default::default()
    };
    let (pase, _) = PaseIvfFlatIndex::build(gen_opts, params, &bm, &data).unwrap();
    let spec_opts = SpecializedOptions::default();
    let (faiss_star, _) =
        IvfFlatIndex::with_centroids(spec_opts, params, pase.centroids().clone(), &data);

    for qi in [0usize, 100, 700, 1499] {
        let q = data.row(qi);
        let a = pase.search_with_nprobe(&bm, q, 10, 12).unwrap();
        let b = faiss_star.search_with_nprobe(q, 10, 12);
        assert_eq!(a, b, "query {qi}");
    }
}

/// Same k-means flavor + same seed ⇒ same centroids in both engines.
#[test]
fn training_is_engine_independent() {
    let data = gaussian::generate(16, 1_000, 8, 9);
    let params = IvfParams {
        clusters: 8,
        sample_ratio: 0.5,
        nprobe: 8,
    };
    let bm = bm(2048);
    let gen_opts = GeneralizedOptions {
        kmeans: KmeansFlavor::FaissStyle,
        assignment_gemm: Some(vdb_core::gemm::GemmKernel::Blas),
        ..Default::default()
    };
    let (pase, _) = PaseIvfFlatIndex::build(gen_opts, params, &bm, &data).unwrap();
    let (faiss, _) = IvfFlatIndex::build(SpecializedOptions::default(), params, &data);
    assert_eq!(
        pase.centroids().as_flat(),
        faiss.quantizer().centroids().as_flat(),
        "same flavor + seed must give identical centroids"
    );
    assert_eq!(pase.bucket_sizes(), faiss.bucket_sizes());
}

/// HNSW recall is statistically equivalent across engines when built
/// with the same parameters (the paper's "recall rate will be the
/// same" premise).
#[test]
fn hnsw_recall_parity() {
    let (data, queries) = gaussian::generate_with_queries(16, 1_200, 30, 8, 21);
    let truth = brute_force_topk(&data, &queries, Metric::L2, 10, 2);
    let params = HnswParams {
        bnn: 12,
        efb: 40,
        efs: 80,
    };

    let (spec, _) = HnswIndex::build(SpecializedOptions::default(), params, &data);
    let spec_results: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| spec.search(q, 10).iter().map(|n| n.id).collect())
        .collect();

    let bm = bm(4096);
    let (gener, _) =
        PaseHnswIndex::build(GeneralizedOptions::default(), params, &bm, &data).unwrap();
    let gen_results: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            gener
                .search_with_ef(&bm, q, 10, params.efs)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();

    let spec_recall = recall_at_k(&truth, &spec_results);
    let gen_recall = recall_at_k(&truth, &gen_results);
    assert!(spec_recall > 0.85, "specialized recall {spec_recall}");
    assert!(gen_recall > 0.85, "generalized recall {gen_recall}");
    assert!(
        (spec_recall - gen_recall).abs() < 0.1,
        "recall divergence: {spec_recall} vs {gen_recall}"
    );
}

/// RC#6 is a performance switch, not a correctness switch: both heap
/// strategies return the same result set.
#[test]
fn heap_strategy_does_not_change_answers() {
    let data = gaussian::generate(16, 800, 8, 31);
    let params = IvfParams {
        clusters: 8,
        sample_ratio: 0.5,
        nprobe: 4,
    };
    let bm = bm(2048);
    let size_n = GeneralizedOptions::default();
    let size_k = GeneralizedOptions {
        topk: TopKStrategy::SizeK,
        ..size_n
    };
    let (a, _) = PaseIvfFlatIndex::build(size_n, params, &bm, &data).unwrap();
    let (b, _) = PaseIvfFlatIndex::build(size_k, params, &bm, &data).unwrap();
    for qi in [5usize, 250, 799] {
        let q = data.row(qi);
        assert_eq!(
            a.search_with_nprobe(&bm, q, 20, 4).unwrap(),
            b.search_with_nprobe(&bm, q, 20, 4).unwrap(),
            "query {qi}"
        );
    }
}

/// The specialized flat index is the recall oracle: IVF_FLAT at full
/// probe equals it exactly in both engines.
#[test]
fn full_probe_equals_flat_everywhere() {
    let data = gaussian::generate(12, 600, 6, 41);
    let params = IvfParams {
        clusters: 6,
        sample_ratio: 0.5,
        nprobe: 6,
    };
    let flat = vdb_core::specialized::FlatIndex::new(SpecializedOptions::default(), data.clone());
    let (ivf, _) = IvfFlatIndex::build(SpecializedOptions::default(), params, &data);
    let bm = bm(2048);
    let gen_opts = GeneralizedOptions {
        distance: DistanceKernel::Optimized,
        ..Default::default()
    };
    let (pase, _) = PaseIvfFlatIndex::build(gen_opts, params, &bm, &data).unwrap();

    for qi in [0usize, 300, 599] {
        let q = data.row(qi);
        let oracle = flat.search(q, 10);
        assert_eq!(
            ivf.search_with_nprobe(q, 10, 6),
            oracle,
            "specialized, query {qi}"
        );
        assert_eq!(
            pase.search_with_nprobe(&bm, q, 10, 6).unwrap(),
            oracle,
            "generalized, query {qi}"
        );
    }
}

//! Failure injection across layers: exhausted buffer pools, oversized
//! tuples, malformed SQL, and dimension mismatches must surface as
//! errors, never as corruption or panics.

use std::sync::Arc;
use vdb_core::datagen::gaussian;
use vdb_core::generalized::{GeneralizedOptions, PaseIvfFlatIndex};
use vdb_core::sql::{Database, SqlError};
use vdb_core::storage::{BufferManager, DiskManager, HeapTable, PageSize, StorageError};
use vdb_core::vecmath::IvfParams;

#[test]
fn tiny_buffer_pool_still_computes_correct_answers() {
    // A 16-frame pool against a dataset needing ~70 pages: constant
    // eviction, same results.
    let data = gaussian::generate(64, 2_000, 8, 5);
    let params = IvfParams {
        clusters: 8,
        sample_ratio: 0.5,
        nprobe: 8,
    };
    let big = BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), 4096);
    let (reference, _) =
        PaseIvfFlatIndex::build(GeneralizedOptions::default(), params, &big, &data).unwrap();

    let tiny = BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), 16);
    let (thrashing, _) =
        PaseIvfFlatIndex::build(GeneralizedOptions::default(), params, &tiny, &data).unwrap();
    assert!(tiny.stats().evictions > 0, "tiny pool must evict");

    for qi in [0usize, 321, 999] {
        let q = data.row(qi);
        assert_eq!(
            reference.search_with_nprobe(&big, q, 10, 8).unwrap(),
            thrashing.search_with_nprobe(&tiny, q, 10, 8).unwrap(),
            "query {qi}"
        );
    }
}

#[test]
fn oversized_tuple_is_rejected_cleanly() {
    let bm = BufferManager::new(Arc::new(DiskManager::new(PageSize::Size4K)), 8);
    let table = HeapTable::create(&bm);
    let err = table.insert(&bm, &vec![0u8; 10_000]).unwrap_err();
    assert!(matches!(err, StorageError::TupleTooLarge { .. }));
    // The relation is untouched.
    assert_eq!(table.count(&bm).unwrap(), 0);
}

#[test]
fn vector_wider_than_page_is_an_error_not_a_panic() {
    // A 4KB page cannot hold a 2000-dim vector tuple (8 + 8000 bytes).
    let mut db = Database::new(PageSize::Size4K, 256);
    db.execute("CREATE TABLE t (id int, vec float[2000])")
        .unwrap();
    let huge = vec!["0.5"; 2000].join(",");
    let err = db
        .execute(&format!("INSERT INTO t VALUES (1, '{{{huge}}}')"))
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Storage(StorageError::TupleTooLarge { .. })),
        "{err:?}"
    );
}

#[test]
fn malformed_sql_reports_parse_errors() {
    let mut db = Database::in_memory();
    for bad in [
        "SELEC id FROM t",
        "CREATE TABLE (id int)",
        "SELECT id FROM t ORDER BY vec <-> LIMIT 5",
        "INSERT INTO t VALUES (1, 'not,a,,number')",
        "CREATE INDEX i ON t USING quadtree(vec)",
        "SELECT id FROM t LIMIT 0",
        "'unterminated",
    ] {
        let err = db.execute(bad).unwrap_err();
        // Statement-level syntax errors are positioned (`ParseAt`);
        // PASE-literal rejections keep the unpositioned `Parse`.
        assert!(
            matches!(err, SqlError::Parse(_) | SqlError::ParseAt { .. }),
            "{bad:?} gave {err:?}"
        );
    }
}

#[test]
fn bad_index_options_are_semantic_errors() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[4])").unwrap();
    db.execute("INSERT INTO t VALUES (1, '{1,2,3,4}')").unwrap();
    for bad in [
        "CREATE INDEX i ON t USING ivfflat(vec) WITH (bogus = 1)",
        "CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 0.5)",
        "CREATE INDEX i ON t USING ivfflat(vec) WITH (distance_type = 9)",
        "CREATE INDEX i ON t USING ivfflat(vec) WITH (sample_ratio = 2000)",
    ] {
        let err = db.execute(bad).unwrap_err();
        assert!(matches!(err, SqlError::Semantic(_)), "{bad:?} gave {err:?}");
    }
}

#[test]
fn empty_table_cannot_be_indexed() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[4])").unwrap();
    let err = db
        .execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 2)")
        .unwrap_err();
    assert!(matches!(err, SqlError::Semantic(_)));
}

#[test]
fn mixed_dimension_inserts_rejected() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[])").unwrap();
    db.execute("INSERT INTO t VALUES (1, '{1,2,3}')").unwrap(); // fixes dim=3
    let err = db.execute("INSERT INTO t VALUES (2, '{1,2}')").unwrap_err();
    assert!(matches!(err, SqlError::Semantic(_)));
    // The good row is still there and searchable.
    let res = db
        .execute("SELECT id FROM t ORDER BY vec <-> '1,2,3' LIMIT 1")
        .unwrap();
    assert_eq!(res.ids(), vec![1]);
}

#[test]
fn invalid_tid_fetch_is_an_error() {
    let bm = BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), 8);
    let table = HeapTable::create(&bm);
    let tid = table.insert(&bm, &[0u8; 16]).unwrap();
    // Offset beyond the line-pointer array.
    let bogus = vdb_core::storage::Tid::new(tid.block, 99);
    let err = table.fetch_bytes(&bm, bogus, |_| ()).unwrap_err();
    assert_eq!(err, StorageError::InvalidTid(bogus));
    // Nonexistent block.
    let bogus_block = vdb_core::storage::Tid::new(55, 1);
    let err = table.fetch_bytes(&bm, bogus_block, |_| ()).unwrap_err();
    assert_eq!(err, StorageError::InvalidBlock(55));
}

//! Strategy-equivalence tests for hybrid (filtered) vector search.
//!
//! With exhaustive probing (`nprobe = clusters`) the IVF search is
//! exact, so *every* execution strategy — pre-filter, post-filter, and
//! brute force under the filter — must return the identical top-k on
//! both engines, at every selectivity including the 0% and 100% edges.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_core::datagen::{
    brute_force_topk_filtered, gaussian, threshold_for_selectivity, uniform_attrs,
};
use vdb_core::filter::{FilterStrategy, SelectionBitmap};
use vdb_core::generalized::{GeneralizedOptions, PaseIndex, PaseIvfFlatIndex};
use vdb_core::specialized::{FlatIndex, IvfFlatIndex, SpecializedOptions, VectorIndex};
use vdb_core::storage::{BufferManager, DiskManager, PageSize};
use vdb_core::vecmath::{DistanceKernel, IvfParams, Metric, VectorSet};

fn bm(pages: usize) -> BufferManager {
    BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), pages)
}

/// A selection bitmap passing rows with `attrs[id] < t` for the cutoff
/// matching `selectivity`, plus the pass closure for the oracle.
fn bitmap_for(attrs: &[f64], selectivity: f64) -> (SelectionBitmap, f64) {
    let t = threshold_for_selectivity(attrs, selectivity);
    let bitmap: SelectionBitmap = attrs
        .iter()
        .enumerate()
        .filter(|(_, &a)| a < t)
        .map(|(i, _)| i as u64)
        .collect();
    (bitmap, t)
}

const SELECTIVITIES: [f64; 6] = [0.0, 0.001, 0.01, 0.1, 0.5, 1.0];

#[test]
fn specialized_strategies_agree_across_selectivities() {
    let (data, queries) = gaussian::generate_with_queries(12, 2_000, 8, 8, 41);
    let attrs = uniform_attrs(2_000, 42);
    // Full probe: the ANN layer is exact, isolating the filter logic.
    let params = IvfParams {
        clusters: 8,
        sample_ratio: 0.3,
        nprobe: 8,
    };
    let (ivf, _) = IvfFlatIndex::build(SpecializedOptions::default(), params, &data);
    let flat = FlatIndex::new(SpecializedOptions::default(), data.clone());

    for sel in SELECTIVITIES {
        let (bitmap, t) = bitmap_for(&attrs, sel);
        let truth = brute_force_topk_filtered(&data, &queries, Metric::L2, 10, 2, &|id| {
            attrs[id as usize] < t
        });
        for (qi, q) in queries.iter().enumerate() {
            let expect = &truth.neighbors[qi];
            for index in [&ivf as &dyn VectorIndex, &flat] {
                for strategy in [FilterStrategy::PreFilter, FilterStrategy::PostFilter] {
                    let got: Vec<u64> = index
                        .search_filtered(q, 10, &bitmap, strategy)
                        .into_iter()
                        .map(|n| n.id)
                        .collect();
                    assert_eq!(&got, expect, "sel {sel}, query {qi}, strategy {strategy:?}");
                }
            }
        }
    }
}

#[test]
fn generalized_strategies_agree_across_selectivities() {
    let (data, queries) = gaussian::generate_with_queries(12, 1_200, 6, 8, 43);
    let attrs = uniform_attrs(1_200, 44);
    let params = IvfParams {
        clusters: 8,
        sample_ratio: 0.3,
        nprobe: 8,
    };
    let bm = bm(8_192);
    let opts = GeneralizedOptions {
        distance: DistanceKernel::Optimized,
        ..Default::default()
    };
    let (pase, _) = PaseIvfFlatIndex::build_with_ids(opts, params, &bm, None, &data).unwrap();

    for sel in SELECTIVITIES {
        let (bitmap, t) = bitmap_for(&attrs, sel);
        let truth = brute_force_topk_filtered(&data, &queries, Metric::L2, 10, 2, &|id| {
            attrs[id as usize] < t
        });
        for (qi, q) in queries.iter().enumerate() {
            let expect = &truth.neighbors[qi];
            for strategy in [FilterStrategy::PreFilter, FilterStrategy::PostFilter] {
                let got: Vec<u64> = pase
                    .scan_filtered(&bm, q, 10, &bitmap, strategy, None)
                    .unwrap()
                    .into_iter()
                    .map(|n| n.id)
                    .collect();
                assert_eq!(&got, expect, "sel {sel}, query {qi}, strategy {strategy:?}");
            }
        }
    }
}

/// The memory-optimized (bucket-cache) read path must filter
/// identically to the paged path.
#[test]
fn generalized_cache_path_matches_paged_path() {
    let data = gaussian::generate(8, 600, 4, 45);
    let attrs = uniform_attrs(600, 46);
    let params = IvfParams {
        clusters: 4,
        sample_ratio: 0.5,
        nprobe: 4,
    };
    let (bitmap, _) = bitmap_for(&attrs, 0.1);

    let mut results = Vec::new();
    for memory_optimized in [false, true] {
        let bm = bm(4_096);
        let opts = GeneralizedOptions {
            memory_optimized,
            ..Default::default()
        };
        let (pase, _) = PaseIvfFlatIndex::build_with_ids(opts, params, &bm, None, &data).unwrap();
        let q = data.row(11);
        results.push(
            pase.scan_filtered(&bm, q, 5, &bitmap, FilterStrategy::PreFilter, None)
                .unwrap(),
        );
    }
    assert_eq!(results[0], results[1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized instances: pre-filter, post-filter, and the exact
    /// oracle agree on both engines for arbitrary k and selectivity.
    #[test]
    fn strategies_equivalent_on_random_instances(
        seed in 0u64..1_000,
        k in 1usize..12,
        sel in 0.0f64..1.0,
    ) {
        let n = 400;
        let (data, queries) = gaussian::generate_with_queries(6, n, 3, 4, seed);
        let attrs = uniform_attrs(n, seed ^ 0xA5A5);
        let (bitmap, t) = bitmap_for(&attrs, sel);
        let params = IvfParams { clusters: 4, sample_ratio: 0.5, nprobe: 4 };
        let (ivf, _) = IvfFlatIndex::build(SpecializedOptions::default(), params, &data);
        let bufs = bm(4_096);
        let (pase, _) = PaseIvfFlatIndex::build_with_ids(
            GeneralizedOptions { distance: DistanceKernel::Optimized, ..Default::default() },
            params,
            &bufs,
            None,
            &data,
        ).unwrap();

        let queries: &VectorSet = &queries;
        let truth = brute_force_topk_filtered(&data, queries, Metric::L2, k, 2, &|id| {
            attrs[id as usize] < t
        });
        for (qi, q) in queries.iter().enumerate() {
            let expect = &truth.neighbors[qi];
            for strategy in [FilterStrategy::PreFilter, FilterStrategy::PostFilter] {
                let spec: Vec<u64> = ivf
                    .search_filtered(q, k, &bitmap, strategy)
                    .into_iter()
                    .map(|n| n.id)
                    .collect();
                prop_assert_eq!(&spec, expect, "specialized {:?} q{}", strategy, qi);
                let genr: Vec<u64> = pase
                    .scan_filtered(&bufs, q, k, &bitmap, strategy, None)
                    .unwrap()
                    .into_iter()
                    .map(|n| n.id)
                    .collect();
                prop_assert_eq!(&genr, expect, "generalized {:?} q{}", strategy, qi);
            }
        }
    }
}

//! Cross-crate integration: SQL front end → planner → generalized
//! engine → buffer manager → pages, checked against brute force.

use vdb_core::datagen::{brute_force_topk, gaussian, recall_at_k};
use vdb_core::sql::{Database, SqlError, Value};
use vdb_core::vecmath::{Metric, VectorSet};

fn load(db: &mut Database, table: &str, data: &VectorSet) {
    let ids: Vec<i64> = (0..data.len() as i64).collect();
    db.bulk_load(table, &ids, data).unwrap();
}

fn vec_literal(v: &[f32]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[test]
fn paper_workflow_ivfflat() {
    // The full §II-E workflow at integration scale.
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[32])")
        .unwrap();
    let (data, _) = gaussian::generate_with_queries(32, 2_000, 0, 16, 42);
    load(&mut db, "t", &data);
    db.execute(
        "CREATE INDEX ivfflat_idx ON t USING ivfflat(vec) \
         WITH (clusters = 40, sample_ratio = 100, distance_type = 0)",
    )
    .unwrap();

    let (_, queries) = gaussian::generate_with_queries(32, 0, 20, 16, 42);
    let truth = brute_force_topk(&data, &queries, Metric::L2, 10, 2);
    let mut results = Vec::new();
    for q in queries.iter() {
        let res = db
            .execute(&format!(
                "SELECT id FROM t ORDER BY vec <-> '{}:40'::PASE LIMIT 10",
                vec_literal(q)
            ))
            .unwrap();
        results.push(res.ids().into_iter().map(|i| i as u64).collect::<Vec<_>>());
    }
    // Full probing (nprobe = clusters) is exact.
    let recall = recall_at_k(&truth, &results);
    assert!(
        (recall - 1.0).abs() < 1e-9,
        "full-probe IVF_FLAT through SQL must be exact, got {recall}"
    );
}

#[test]
fn hnsw_through_sql_has_high_recall() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[16])")
        .unwrap();
    let (data, queries) = gaussian::generate_with_queries(16, 1_500, 25, 8, 7);
    load(&mut db, "t", &data);
    db.execute("CREATE INDEX h ON t USING hnsw(vec) WITH (bnn = 12, efb = 40, efs = 80)")
        .unwrap();

    let truth = brute_force_topk(&data, &queries, Metric::L2, 10, 2);
    let mut results = Vec::new();
    for q in queries.iter() {
        let res = db
            .execute(&format!(
                "SELECT id FROM t ORDER BY vec <-> '{}' LIMIT 10",
                vec_literal(q)
            ))
            .unwrap();
        results.push(res.ids().into_iter().map(|i| i as u64).collect::<Vec<_>>());
    }
    let recall = recall_at_k(&truth, &results);
    assert!(recall > 0.85, "HNSW-through-SQL recall {recall} too low");
}

#[test]
fn ivfpq_through_sql_beats_random() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[32])")
        .unwrap();
    let (data, queries) = gaussian::generate_with_queries(32, 2_000, 15, 16, 17);
    load(&mut db, "t", &data);
    db.execute(
        "CREATE INDEX p ON t USING ivfpq(vec) \
         WITH (clusters = 40, m = 8, cpq = 64, sample_ratio = 100)",
    )
    .unwrap();

    let truth = brute_force_topk(&data, &queries, Metric::L2, 10, 2);
    let mut results = Vec::new();
    for q in queries.iter() {
        let res = db
            .execute(&format!(
                "SELECT id FROM t ORDER BY vec <-> '{}:40'::PASE LIMIT 10",
                vec_literal(q)
            ))
            .unwrap();
        results.push(res.ids().into_iter().map(|i| i as u64).collect::<Vec<_>>());
    }
    let recall = recall_at_k(&truth, &results);
    // PQ is lossy by design (§II-B: "significantly reduce space with
    // the downside of lower recall"), and Gaussian-mixture data puts
    // all true neighbors inside one tight cluster where m-byte codes
    // can barely rank them. Random guessing scores k/n = 0.005 here;
    // demand an order of magnitude above that.
    assert!(recall > 0.1, "IVF_PQ-through-SQL recall {recall} too low");
}

#[test]
fn inserts_update_table_and_index_consistently() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[8])").unwrap();
    let data = gaussian::generate(8, 500, 4, 5);
    load(&mut db, "t", &data);
    db.execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 8, sample_ratio = 500)")
        .unwrap();

    // Insert a distinctive new row through SQL; both paths must see it.
    db.execute("INSERT INTO t VALUES (7777, '{9,9,9,9,9,9,9,9}')")
        .unwrap();
    let by_index = db
        .execute("SELECT id FROM t ORDER BY vec <-> '9,9,9,9,9,9,9,9:8' LIMIT 1")
        .unwrap();
    assert_eq!(by_index.ids(), vec![7777]);
    let by_lookup = db.execute("SELECT id, vec FROM t WHERE id = 7777").unwrap();
    assert_eq!(by_lookup.rows.len(), 1);
    assert_eq!(by_lookup.rows[0][1], Value::Vector(vec![9.0; 8]));
}

#[test]
fn seq_scan_and_index_scan_agree_on_exact_search() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[8])").unwrap();
    let data = gaussian::generate(8, 800, 8, 12);
    load(&mut db, "t", &data);

    let q = vec_literal(data.row(123));
    let seq = db
        .execute(&format!("SELECT id FROM t ORDER BY vec <-> '{q}' LIMIT 5"))
        .unwrap();
    db.execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 10, sample_ratio = 500)")
        .unwrap();
    let indexed = db
        .execute(&format!(
            "SELECT id FROM t ORDER BY vec <-> '{q}:10'::PASE LIMIT 5"
        ))
        .unwrap();
    assert_eq!(seq.ids(), indexed.ids());
}

#[test]
fn semantic_errors_are_reported_not_panicked() {
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id int, vec float[4])").unwrap();
    db.execute("INSERT INTO t VALUES (1, '{1,2,3,4}')").unwrap();

    // Query dimension mismatch against a table scan.
    let err = db
        .execute("SELECT id FROM t ORDER BY vec <-> '1,2' LIMIT 1")
        .unwrap_err();
    assert!(matches!(err, SqlError::Semantic(_)), "got {err:?}");

    // Query dimension mismatch against an index scan.
    db.execute("CREATE INDEX i ON t USING ivfflat(vec) WITH (clusters = 1, sample_ratio = 1000)")
        .unwrap();
    let err = db
        .execute("SELECT id FROM t ORDER BY vec <-> '1,2,3' LIMIT 1")
        .unwrap_err();
    assert!(matches!(err, SqlError::Semantic(_)), "got {err:?}");
}

//! Three-way engine equivalence: the decoupled engine must answer
//! exactly like the specialized engine it borrows its structures from,
//! and — wherever the algorithm is deterministic — like the
//! generalized engine too. Runs under both consistency modes and under
//! `VDB_FORCE_SCALAR=1` (CI exercises both kernel paths).
//!
//! Methodology (shared with `engine_equivalence.rs`): at full probe an
//! IVF_FLAT index degenerates to an exact scan, so the specialized
//! flat index is an *exact* oracle for all three engines; HNSW is
//! approximate, so the decoupled engine (which reuses the specialized
//! graph verbatim) must match it bit-for-bit while the generalized
//! engine is held to recall parity.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_core::datagen::{brute_force_topk, gaussian, recall_at_k};
use vdb_core::decoupled::{Consistency, DecoupledIndex, NativeParams};
use vdb_core::generalized::{GeneralizedOptions, PaseHnswIndex, PaseIndex, PaseIvfFlatIndex};
use vdb_core::specialized::{
    FlatIndex, HnswIndex, IvfFlatIndex, IvfPqIndex, SpecializedOptions, VectorIndex,
};
use vdb_core::storage::{BufferManager, DiskManager, PageSize, Tid};
use vdb_core::vecmath::{
    DistanceKernel, HnswParams, IvfParams, Metric, Neighbor, PqParams, TopKStrategy,
};

fn bm(pages: usize) -> BufferManager {
    BufferManager::new(Arc::new(DiskManager::new(PageSize::Size8K)), pages)
}

/// Synthetic heap back-links (never dereferenced here — the heap-side
/// audit lives in `vdb-decoupled`'s strict-invariants tests).
fn tids(n: usize) -> Vec<Tid> {
    (0..n)
        .map(|i| Tid::new((i / 50) as u32, (i % 50) as u16))
        .collect()
}

fn mode_of(bound: Option<u64>) -> Consistency {
    match bound {
        None => Consistency::Sync,
        Some(b) => Consistency::Bounded(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IVF_FLAT at full probe, with inserts and deletes applied to
    /// both engines: decoupled == generalized == flat oracle, exactly,
    /// in either consistency mode.
    #[test]
    fn ivfflat_three_way_topk_equivalence(
        dim in 4usize..12,
        n in 80usize..200,
        k in 1usize..12,
        seed in 0u64..1_000,
        bound in prop_oneof![Just(None::<u64>), (0u64..6).prop_map(Some)],
        n_inserts in 0usize..8,
        n_deletes in 0usize..8,
    ) {
        let clusters = 5usize;
        let params = IvfParams { clusters, sample_ratio: 0.5, nprobe: clusters };
        let data = gaussian::generate(dim, n, 4, seed);
        let extra = gaussian::generate(dim, 8, 2, seed ^ 0xABCD);
        let mode = mode_of(bound);

        // Generalized: optimized kernel + size-k heap so distances are
        // bit-identical with the specialized engine (established by
        // engine_equivalence.rs).
        let bmgr = bm(4096);
        let gen_opts = GeneralizedOptions {
            distance: DistanceKernel::Optimized,
            topk: TopKStrategy::SizeK,
            ..Default::default()
        };
        let ids: Vec<u64> = (0..n as u64).collect();
        let (mut pase, _) =
            PaseIvfFlatIndex::build_with_ids(gen_opts, params, &bmgr, Some(&ids), &data).unwrap();

        let all_tids = tids(n + n_inserts);
        let dec = DecoupledIndex::build(
            SpecializedOptions::default(),
            NativeParams::IvfFlat(params),
            mode,
            &ids,
            &all_tids[..n],
            &data,
        );

        // The model the oracle is built from: live (id, vector) pairs.
        let mut live: Vec<(u64, Vec<f32>)> =
            (0..n).map(|i| (i as u64, data.row(i).to_vec())).collect();

        for j in 0..n_inserts {
            let id = (n + j) as u64;
            let v = extra.row(j);
            pase.insert(&bmgr, id, v).unwrap();
            dec.insert(id, all_tids[n + j], v);
            live.push((id, v.to_vec()));
        }
        let mut deleted: Vec<u64> = Vec::new();
        for j in 0..n_deletes {
            let id = ((j * 31 + seed as usize) % n) as u64;
            if deleted.contains(&id) {
                continue;
            }
            // The generalized engine (like PASE) has no index delete:
            // the SQL executor filters dead ids at scan time, and we
            // model exactly that below.
            dec.delete(id);
            deleted.push(id);
            live.retain(|(lid, _)| *lid != id);
        }

        // Bounded-mode read contract: any search leaves lag <= bound.
        if let Consistency::Bounded(b) = mode {
            dec.search(data.row(0), 1);
            prop_assert!(dec.lag() <= b, "lag {} > bound {b}", dec.lag());
        }
        // Drain barrier, so both modes answer from identical state.
        dec.refresh();
        prop_assert_eq!(dec.lag(), 0);
        prop_assert_eq!(dec.len(), live.len());

        // Exact oracle: flat scan over the live rows only.
        let mut oracle_set = vdb_core::vecmath::VectorSet::empty(dim);
        for (_, v) in &live {
            oracle_set.push(v);
        }
        let oracle = FlatIndex::new(SpecializedOptions::default(), oracle_set);

        for qi in [0usize, n / 2, n - 1] {
            let q = data.row(qi);
            let expect: Vec<Neighbor> = oracle
                .search(q, k)
                .into_iter()
                .map(|nb| Neighbor::new(live[nb.id as usize].0, nb.distance))
                .collect();

            let got_dec = dec.search(q, k);
            prop_assert_eq!(&got_dec, &expect, "decoupled, query {}", qi);

            let mut got_gen = pase
                .search_with_nprobe(&bmgr, q, k + deleted.len(), clusters)
                .unwrap();
            got_gen.retain(|nb| !deleted.contains(&nb.id));
            got_gen.truncate(k);
            prop_assert_eq!(&got_gen, &expect, "generalized, query {}", qi);
        }
    }

    /// Every native kind, same insertion order: the decoupled engine
    /// must reproduce the specialized engine's answers bit-for-bit
    /// (HNSW included — identical build + insert sequence means an
    /// identical graph), in either consistency mode.
    #[test]
    fn decoupled_matches_specialized_for_every_native_kind(
        seed in 0u64..500,
        k in 1usize..10,
        n_inserts in 0usize..6,
        bound in prop_oneof![Just(None::<u64>), (0u64..4).prop_map(Some)],
    ) {
        let (dim, n) = (8usize, 150usize);
        let data = gaussian::generate(dim, n, 5, seed);
        let extra = gaussian::generate(dim, 6, 2, seed ^ 0x55);
        let ivf = IvfParams { clusters: 6, sample_ratio: 0.5, nprobe: 3 };
        let pq = PqParams { m: 4, cpq: 16 };
        let hnsw = HnswParams { bnn: 8, efb: 32, efs: 48 };
        let opts = SpecializedOptions::default();
        let mode = mode_of(bound);

        // App id i == native id i, so translation is the identity and
        // result lists must be equal outright.
        let ids: Vec<u64> = (0..n as u64).collect();
        let all_tids = tids(n + n_inserts);

        for params in [
            NativeParams::Flat,
            NativeParams::IvfFlat(ivf),
            NativeParams::IvfPq(ivf, pq),
            NativeParams::Hnsw(hnsw),
        ] {
            let dec =
                DecoupledIndex::build(opts, params, mode, &ids, &all_tids[..n], &data);
            for j in 0..n_inserts {
                dec.insert((n + j) as u64, all_tids[n + j], extra.row(j));
            }
            dec.refresh();

            let q = data.row(seed as usize % n);
            let expect: Vec<Neighbor> = match params {
                NativeParams::Flat => {
                    let mut twin = FlatIndex::new(opts, data.clone());
                    for j in 0..n_inserts {
                        twin.add(extra.row(j));
                    }
                    twin.search(q, k)
                }
                NativeParams::IvfFlat(p) => {
                    let (mut twin, _) = IvfFlatIndex::build(opts, p, &data);
                    for j in 0..n_inserts {
                        twin.insert(extra.row(j));
                    }
                    twin.search(q, k)
                }
                NativeParams::IvfPq(p, pqp) => {
                    let (mut twin, _) = IvfPqIndex::build(opts, p, pqp, &data);
                    for j in 0..n_inserts {
                        twin.insert(extra.row(j));
                    }
                    twin.search(q, k)
                }
                NativeParams::Hnsw(h) => {
                    let (mut twin, _) = HnswIndex::build(opts, h, &data);
                    for j in 0..n_inserts {
                        twin.insert(extra.row(j));
                    }
                    twin.search(q, k)
                }
            };
            let got = dec.search(q, k);
            prop_assert_eq!(got, expect, "{}", params.am_name());
        }
    }
}

/// HNSW three ways: decoupled == specialized exactly (same graph), and
/// all three engines sit at the same recall (the paper's "recall rate
/// will be the same" premise, extended to §IX-B).
#[test]
fn hnsw_three_way_recall_parity() {
    let (data, queries) = gaussian::generate_with_queries(16, 1_000, 25, 8, 33);
    let truth = brute_force_topk(&data, &queries, Metric::L2, 10, 2);
    let params = HnswParams {
        bnn: 12,
        efb: 40,
        efs: 80,
    };

    let (spec, _) = HnswIndex::build(SpecializedOptions::default(), params, &data);
    let ids: Vec<u64> = (0..data.len() as u64).collect();
    let dec = DecoupledIndex::build(
        SpecializedOptions::default(),
        NativeParams::Hnsw(params),
        Consistency::Sync,
        &ids,
        &tids(data.len()),
        &data,
    );
    let bmgr = bm(4096);
    let (gener, _) =
        PaseHnswIndex::build(GeneralizedOptions::default(), params, &bmgr, &data).unwrap();

    let mut dec_results: Vec<Vec<u64>> = Vec::new();
    for q in queries.iter() {
        let d = dec.search(q, 10);
        let s = spec.search(q, 10);
        assert_eq!(d, s, "decoupled must reuse the specialized graph verbatim");
        dec_results.push(d.iter().map(|n| n.id).collect());
    }
    let gen_results: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            gener
                .search_with_ef(&bmgr, q, 10, params.efs)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();

    let dec_recall = recall_at_k(&truth, &dec_results);
    let gen_recall = recall_at_k(&truth, &gen_results);
    assert!(dec_recall > 0.85, "decoupled recall {dec_recall}");
    assert!(gen_recall > 0.85, "generalized recall {gen_recall}");
    assert!(
        (dec_recall - gen_recall).abs() < 0.1,
        "recall divergence: {dec_recall} vs {gen_recall}"
    );
}
